package service

// The sweep orchestration layer: SubmitSweep expands a spec.SweepSpec into
// its cell plan (internal/sweep), fans the cells through the SAME
// submission path every individual job takes — so cells deduplicate
// against prior jobs, other sweeps, the memo, and the artifact store —
// evaluates each completed cell, and aggregates the paper-style table.
//
// A sweep is itself a job-like citizen: deterministic ID (a pure function
// of the canonicalized cell-key set), live per-cell status, honest failure
// semantics (a failed cell is recorded and excluded from the aggregate;
// the rest complete), cancellation that respects dedup (only cells no
// other submitter holds are canceled), and a persisted result artifact so
// a finished table survives restarts byte-for-byte.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"seprivgemb/internal/experiments"
	"seprivgemb/internal/graph"
	"seprivgemb/internal/spec"
	"seprivgemb/internal/sweep"
)

// Sweep cell lifecycle states (the wire vocabulary of SweepCellInfo).
const (
	cellQueued   = "queued"
	cellRunning  = "running"
	cellDone     = "done"
	cellFailed   = "failed"
	cellCanceled = "canceled"
)

// sweepCell is one grid point's orchestration state. jobID is fixed at
// expansion (a pure function of the cell key); job and the terminal fields
// are guarded by the owning Sweep's mutex.
type sweepCell struct {
	c      *sweep.Cell
	jobID  string
	job    *Job     // nil until submitted
	status string   // terminal states only; "" while the job decides
	metric *float64 // set when status == cellDone
	errMsg string   // set when status == cellFailed
}

// Sweep is the handle to one submitted comparison grid.
type Sweep struct {
	id      string
	metric  string
	tenant  string
	created time.Time
	svc     *Service
	plan    *sweep.Plan

	mu       sync.Mutex
	cells    []*sweepCell
	canceled bool
	result   *spec.SweepResultResponse // set once, before done closes

	// finished signals cell completions to the feeder's quota-retry loop;
	// buffered to the cell count so waiters never block on it.
	finished chan struct{}
	done     chan struct{}
}

// ID returns the sweep's deterministic identifier.
func (sw *Sweep) ID() string { return sw.id }

// Metric returns the sweep's canonical metric name.
func (sw *Sweep) Metric() string { return sw.metric }

// Tenant returns the tenant recorded at submission.
func (sw *Sweep) Tenant() string { return sw.tenant }

// Created returns when this sweep handle was registered.
func (sw *Sweep) Created() time.Time { return sw.created }

// Done returns a channel closed when every cell is terminal and the
// aggregate is published.
func (sw *Sweep) Done() <-chan struct{} { return sw.done }

// Wait blocks until the sweep completes or ctx is done, then returns the
// aggregated outcome. A sweep always completes — failed and canceled
// cells are recorded, not fatal — so the only error is ctx's.
func (sw *Sweep) Wait(ctx context.Context) (*spec.SweepResultResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-sw.done:
		return sw.result, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result returns the aggregated outcome, false if the sweep has not
// completed yet.
func (sw *Sweep) Result() (*spec.SweepResultResponse, bool) {
	select {
	case <-sw.done:
		return sw.result, true
	default:
		return nil, false
	}
}

// Cancel requests cancellation of the sweep's remaining work: cells not
// yet submitted are marked canceled without ever reaching the queue, and
// cells whose job this sweep is the ONLY holder of are canceled. A cell
// deduplicated onto a job another submitter also holds — an independent
// client, another sweep — keeps running: canceling a sweep must not reach
// through dedup into work someone else is waiting on. The sweep still
// completes (cancellation is a kind of completion), with those shared
// cells finishing normally.
func (sw *Sweep) Cancel() {
	sw.mu.Lock()
	sw.canceled = true
	var doomed []*Job
	for _, sc := range sw.cells {
		if sc.status != "" || sc.job == nil {
			continue
		}
		select {
		case <-sc.job.done:
			continue // already terminal; the waiter will record it
		default:
		}
		if sc.job.Holders() == 1 {
			doomed = append(doomed, sc.job)
		}
	}
	sw.mu.Unlock()
	for _, j := range doomed {
		j.Cancel()
	}
}

// Status assembles the live wire view: per-cell states (terminal states as
// recorded; live cells reflect their job's queue position) and the derived
// counts.
func (sw *Sweep) Status() *spec.SweepResponse {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	resp := &spec.SweepResponse{
		ID:      sw.id,
		Metric:  sw.metric,
		Tenant:  sw.tenant,
		Created: sw.created.UTC().Format(time.RFC3339Nano),
	}
	for _, sc := range sw.cells {
		info := spec.SweepCellInfo{
			JobID:   sc.jobID,
			Graph:   sc.c.Graph,
			Method:  sc.c.Method,
			Epsilon: sc.c.Epsilon,
			Seed:    sc.c.Seed,
			Status:  sc.liveStatus(),
			Metric:  sc.metric,
			Error:   sc.errMsg,
		}
		switch info.Status {
		case cellQueued:
			resp.Counts.Queued++
		case cellRunning:
			resp.Counts.Running++
		case cellDone:
			resp.Counts.Done++
		case cellFailed:
			resp.Counts.Failed++
		case cellCanceled:
			resp.Counts.Canceled++
		}
		resp.Cells = append(resp.Cells, info)
	}
	select {
	case <-sw.done:
		resp.Status = sw.result.Status
	default:
		if resp.Counts.Running > 0 || resp.Counts.Done > 0 || resp.Counts.Failed > 0 || resp.Counts.Canceled > 0 {
			resp.Status = "running"
		} else {
			resp.Status = "queued"
		}
	}
	return resp
}

// liveStatus maps a cell to its wire state. Terminal records win; a cell
// whose job finished but whose evaluation has not been recorded yet still
// reports running — the cell's work includes scoring. Callers hold the
// sweep mutex.
func (sc *sweepCell) liveStatus() string {
	if sc.status != "" {
		return sc.status
	}
	if sc.job == nil {
		return cellQueued
	}
	if sc.job.Status() == StatusQueued {
		return cellQueued
	}
	return cellRunning
}

// SubmitSweep validates and expands a sweep spec, registers it, and starts
// its orchestration. Identical grids — the same canonicalized cell-key set
// and evaluation selection, however the axes were spelled — share one
// sweep ID, and a resubmission returns the existing handle: a finished
// sweep answers instantly from its aggregate, an in-flight one is joined.
// Expansion failures (empty axes, an unresolvable graph source, a config
// contradicting its axes) reject the whole sweep with ErrInvalidSpec;
// per-cell failures past expansion are recorded in the completed sweep.
func (s *Service) SubmitSweep(sp *spec.SweepSpec) (*Sweep, error) {
	plan, err := sweep.Expand(sp, s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if sw, ok := s.sweeps[plan.ID]; ok {
		s.mu.Unlock()
		return sw, nil
	}
	sw := &Sweep{
		id:       plan.ID,
		metric:   plan.Metric,
		tenant:   sp.Tenant,
		created:  time.Now(),
		svc:      s,
		plan:     plan,
		finished: make(chan struct{}, len(plan.Cells)),
		done:     make(chan struct{}),
	}
	for _, c := range plan.Cells {
		sw.cells = append(sw.cells, &sweepCell{c: c, jobID: JobID(c.Key)})
	}
	s.sweeps[plan.ID] = sw
	s.wg.Add(1)
	s.mu.Unlock()
	go sw.orchestrate()
	return sw, nil
}

// SweepByID returns the live sweep registered under id.
func (s *Service) SweepByID(id string) (*Sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// SweepResult returns a completed sweep's aggregate: from the live handle
// when the sweep ran (or is still registered) in this process, else from
// the persisted sweep artifact — the restart path, where the table served
// from disk is byte-identical to the one served at completion.
func (s *Service) SweepResult(id string) (*spec.SweepResultResponse, bool) {
	if sw, ok := s.SweepByID(id); ok {
		if res, done := sw.Result(); done {
			return res, true
		}
		return nil, false
	}
	if s.store != nil {
		return s.store.LoadSweep(id)
	}
	return nil, false
}

// orchestrate runs the sweep to completion: feed cells into the queue in
// plan order (respecting the tenant quota by waiting for in-flight cells
// rather than failing), watch each submitted cell, evaluate completions,
// then aggregate, persist, and publish. Runs on the service WaitGroup, so
// Close waits for in-flight sweeps like it waits for jobs.
func (sw *Sweep) orchestrate() {
	defer sw.svc.wg.Done()
	var waiters sync.WaitGroup
	for _, sc := range sw.cells {
		sw.feedCell(sc, &waiters)
	}
	waiters.Wait()
	sw.complete()
}

// feedCell submits one cell, retrying quota rejections after any other
// cell finishes, and starts its completion watcher. Every failure mode is
// recorded on the cell, never returned — one bad cell must not sink the
// grid.
func (sw *Sweep) feedCell(sc *sweepCell, waiters *sync.WaitGroup) {
	for {
		sw.mu.Lock()
		if sw.canceled {
			sc.status = cellCanceled
			sw.mu.Unlock()
			return
		}
		sw.mu.Unlock()
		j, err := sw.svc.SubmitSpec(sc.c.Spec)
		switch {
		case err == nil:
			if j.ID() != sc.jobID {
				// Drift guard: the precomputed cell key disagrees with the
				// submission path's. Unreachable while sweep.buildCell and
				// service.resolve stay in lockstep; recorded, not ignored,
				// because a silent mismatch would aggregate the wrong job.
				sw.record(sc, cellFailed, nil, fmt.Sprintf("internal: cell key drift (planned %s, submitted %s)", sc.jobID, j.ID()))
				return
			}
			sw.mu.Lock()
			sc.job = j
			sw.mu.Unlock()
			waiters.Add(1)
			go sw.watchCell(sc, waiters)
			return
		case errors.Is(err, ErrQuotaExceeded):
			// The sweep's tenant is at its in-flight cap: wait for ANY cell
			// of this sweep to finish (freeing a quota slot) and resubmit.
			// The timeout covers quota held by jobs outside this sweep.
			select {
			case <-sw.finished:
			case <-time.After(20 * time.Millisecond):
			}
		default:
			// ErrInvalidSpec (the method rejected this cell's config against
			// the resolved graph), ErrClosed, or resolution failure: a
			// failed cell of a sweep that still completes.
			sw.record(sc, cellFailed, nil, err.Error())
			return
		}
	}
}

// watchCell waits for a submitted cell's job, evaluates the result, and
// records the terminal state. Evaluation runs here — outside the worker
// slot budget — because scoring is a read of the shared result, orders of
// magnitude cheaper than the training that produced it.
func (sw *Sweep) watchCell(sc *sweepCell, waiters *sync.WaitGroup) {
	defer waiters.Done()
	res, err := sc.job.Wait(context.Background())
	switch {
	case sc.job.Status() == StatusCanceled:
		sw.record(sc, cellCanceled, nil, "")
	case err != nil:
		sw.record(sc, cellFailed, nil, err.Error())
	default:
		v, everr := sc.c.Evaluate(res)
		if everr != nil {
			sw.record(sc, cellFailed, nil, everr.Error())
			return
		}
		sw.record(sc, cellDone, &v, "")
	}
}

// record publishes a cell's terminal state and signals the feeder.
func (sw *Sweep) record(sc *sweepCell, status string, metric *float64, errMsg string) {
	sw.mu.Lock()
	sc.status = status
	sc.metric = metric
	sc.errMsg = errMsg
	sw.mu.Unlock()
	sw.finished <- struct{}{}
}

// complete aggregates the terminal cells into the result artifact and
// publishes it. Everything in the result is a deterministic function of
// the plan and the cell outcomes — no timestamps, map iteration, or
// submission-order dependence — which is what makes the persisted JSON
// byte-identical across submissions, worker counts, and restarts.
func (sw *Sweep) complete() {
	sw.mu.Lock()
	values := make(map[experiments.ResultKey]float64, len(sw.cells))
	res := &spec.SweepResultResponse{ID: sw.id, Metric: sw.metric}
	for _, sc := range sw.cells {
		info := spec.SweepCellInfo{
			JobID:   sc.jobID,
			Graph:   sc.c.Graph,
			Method:  sc.c.Method,
			Epsilon: sc.c.Epsilon,
			Seed:    sc.c.Seed,
			Status:  sc.status,
			Metric:  sc.metric,
			Error:   sc.errMsg,
		}
		switch sc.status {
		case cellDone:
			res.Counts.Done++
			values[sc.c.Key] = *sc.metric
		case cellFailed:
			res.Counts.Failed++
		case cellCanceled:
			res.Counts.Canceled++
		}
		res.Cells = append(res.Cells, info)
	}
	res.Table = sweep.Aggregate(sw.plan, values)
	if res.Counts.Canceled > 0 {
		res.Status = "canceled"
	} else {
		res.Status = "done"
	}
	sw.result = res
	sw.mu.Unlock()
	if sw.svc.store != nil {
		// Best-effort persistence, like result artifacts: a failed write
		// degrades restart warmth, never the in-flight response.
		_ = sw.svc.store.SaveSweep(res)
	}
	close(sw.done)
}

// ResolveGraph implements sweep.Resolver over the service's resolution
// machinery: datasets come from the memo (so expansion warms exactly the
// cache cell submissions will hit), inline and file sources resolve like
// any JobSpec's.
func (s *Service) ResolveGraph(src spec.GraphSource) (*graph.Graph, error) {
	switch {
	case src.Dataset != nil:
		return s.opts.Memo.Dataset(src.Dataset.Name, src.Dataset.Scale, src.Dataset.Seed)
	case src.Inline != nil:
		return buildInline(src.Inline)
	case src.File != nil:
		return s.loadFile(src.File)
	default:
		return nil, fmt.Errorf("spec has no graph source")
	}
}
