// Package service is the first serving-shaped layer over the trainer: a
// job queue that runs SE-PrivGEmb training requests concurrently while
// (a) bounding the total worker goroutines across all running jobs,
// (b) deduplicating identical submissions — same graph fingerprint,
// structure preference, and result-shaping config — through the sweep
// cache's result memo (experiments.Memo.ResultFor), so a popular
// (graph, proximity, config) trains once no matter how many callers ask,
// and (c) exposing each job's live progress, cancellation, and final
// result through a Job handle.
//
// Determinism carries through unchanged: a job's output depends only on
// its (graph, proximity, config), never on queue order, concurrency, or
// which submission of a deduplicated group actually trained.
package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"seprivgemb/internal/core"
	"seprivgemb/internal/experiments"
	"seprivgemb/internal/graph"
	"seprivgemb/internal/proximity"
)

// Options configures a Service.
type Options struct {
	// MaxWorkers bounds the total training-worker slots across all
	// concurrently running jobs; 0 defaults to GOMAXPROCS. A job consumes
	// max(1, min(cfg.Workers, MaxWorkers)) slots while it runs, so a
	// single wide job can never starve the service of slots it could
	// legally grant.
	MaxWorkers int
	// Memo supplies the result/artifact cache. Sharing one Memo between a
	// Service and an experiments sweep shares their caches; nil gets the
	// service a private Memo.
	Memo *experiments.Memo
}

// Status is a Job's lifecycle state.
type Status int32

const (
	// StatusQueued: submitted, waiting for worker slots.
	StatusQueued Status = iota
	// StatusRunning: training (or waiting on a deduplicated twin's run).
	StatusRunning
	// StatusDone: finished; Result returns the embedding.
	StatusDone
	// StatusFailed: finished with an error.
	StatusFailed
	// StatusCanceled: canceled; Result may hold a partial, resumable run.
	StatusCanceled
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", int32(s))
	}
}

// Service queues, deduplicates, and runs training jobs. Construct with New;
// the zero value is not usable.
type Service struct {
	opts  Options
	slots chan struct{} // MaxWorkers tokens
	// acq serializes multi-slot acquisition (two half-acquired wide jobs
	// can never deadlock, and grants are roughly FIFO). It is a
	// channel-based lock rather than a sync.Mutex so that a queued job
	// blocked BEHIND another queued job can still honor cancellation.
	acq chan struct{}

	mu     sync.Mutex
	jobs   map[experiments.ResultKey]*Job
	closed bool
	wg     sync.WaitGroup
}

// New returns a Service ready to accept submissions.
func New(opts Options) *Service {
	if opts.MaxWorkers < 1 {
		opts.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.Memo == nil {
		opts.Memo = experiments.NewMemo()
	}
	s := &Service{
		opts:  opts,
		slots: make(chan struct{}, opts.MaxWorkers),
		acq:   make(chan struct{}, 1),
		jobs:  make(map[experiments.ResultKey]*Job),
	}
	for i := 0; i < opts.MaxWorkers; i++ {
		s.slots <- struct{}{}
	}
	s.acq <- struct{}{}
	return s
}

// Job is the handle to one submitted training run.
type Job struct {
	key    experiments.ResultKey
	cancel context.CancelFunc
	done   chan struct{}

	status atomic.Int32
	// canceled is set synchronously by Cancel, ahead of the (async)
	// status transition, so Submit's dedup never hands out a job that is
	// already doomed.
	canceled atomic.Bool
	stats    atomic.Value // core.EpochStats of the latest completed epoch

	// res/err are written once, before done is closed.
	res *core.Result
	err error
}

// Key returns the job's deduplication key.
func (j *Job) Key() experiments.ResultKey { return j.key }

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status { return Status(j.status.Load()) }

// Progress returns the latest per-epoch stats and whether any epoch has
// completed yet. For a deduplicated job the stats come from whichever
// submission is actually training.
func (j *Job) Progress() (core.EpochStats, bool) {
	st, ok := j.stats.Load().(core.EpochStats)
	return st, ok
}

// Done returns a channel closed when the job finishes (any terminal status).
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cancellation. The training loop stops at the next epoch
// boundary with a partial, resumable Result. Canceling a job cancels the
// underlying run for every submission deduplicated onto it.
func (j *Job) Cancel() {
	j.canceled.Store(true)
	j.cancel()
}

// Wait blocks until the job finishes or ctx is done. On job completion it
// returns Result's values. A job canceled while RUNNING returns its
// partial result (non-nil, with Result.Stopped == core.StopCanceled and a
// resumable checkpoint) and no error — matching core.TrainContext; a job
// canceled while still QUEUED never trained, so it returns
// (nil, context.Canceled).
//
// The returned Result is shared by every submission deduplicated onto
// this job (and by the memo serving later identical submissions): treat
// it as read-only. Scoring and evaluation only ever read the embedding.
func (j *Job) Wait(ctx context.Context) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result returns the job's outcome; it must only be called after Done is
// closed (use Wait otherwise).
func (j *Job) Result() (*core.Result, error) {
	select {
	case <-j.done:
		return j.res, j.err
	default:
		panic("service: Result called before the job finished")
	}
}

// Submit enqueues a training run and returns its Job. If an identical
// submission — equal graph fingerprint, proximity name, and result-shaping
// config (core.Config.Hash, which ignores Workers) — is already queued,
// running, or completed, that existing Job is returned instead of starting
// a duplicate; failed or canceled predecessors are replaced by a fresh run.
func (s *Service) Submit(g *graph.Graph, prox proximity.Proximity, cfg core.Config) (*Job, error) {
	key := experiments.ResultKey{
		Graph:     g.Fingerprint(),
		Proximity: prox.Name(),
		Config:    cfg.Hash(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("service: submit after Close")
	}
	if j, ok := s.jobs[key]; ok {
		st := j.Status()
		// canceled.Load() covers the window between a Cancel call and the
		// run goroutine observing it: a doomed job must not adopt new
		// submitters.
		if st != StatusFailed && st != StatusCanceled && !j.canceled.Load() {
			return j, nil
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{key: key, cancel: cancel, done: make(chan struct{})}
	s.jobs[key] = j
	s.wg.Add(1)
	go s.run(ctx, j, g, prox, cfg)
	return j, nil
}

// Close stops accepting submissions and waits for every in-flight job to
// finish. It does not cancel them; call Cancel on individual jobs first for
// a fast shutdown.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}

// slotsFor returns how many worker slots a config consumes.
func (s *Service) slotsFor(cfg core.Config) int {
	n := cfg.Workers
	if n < 1 {
		n = 1
	}
	if n > s.opts.MaxWorkers {
		n = s.opts.MaxWorkers
	}
	return n
}

// acquire claims n worker slots, or returns ctx.Err if the job is canceled
// while queued — whether it is waiting at the head of the queue (for
// slots) or further back (for the acquisition lock itself). A canceled
// context always wins over an available grant: without the explicit
// ctx.Err() checks, select would pick between a ready slot and a done
// context at random, letting a canceled job start training.
func (s *Service) acquire(ctx context.Context, n int) error {
	select {
	case <-s.acq:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { s.acq <- struct{}{} }()
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		select {
		case <-s.slots:
			// Claimed slot i+1. If the context died concurrently (select
			// picks arbitrarily when both are ready), give everything
			// back below rather than starting a canceled run.
			if err := ctx.Err(); err != nil {
				s.release(i + 1)
				return err
			}
		case <-ctx.Done():
			s.release(i)
			return ctx.Err()
		}
	}
	return nil
}

func (s *Service) release(n int) {
	for i := 0; i < n; i++ {
		s.slots <- struct{}{}
	}
}

// run executes one job: wait for slots, train through the result memo, and
// publish the outcome.
func (s *Service) run(ctx context.Context, j *Job, g *graph.Graph, prox proximity.Proximity, cfg core.Config) {
	defer s.wg.Done()
	defer close(j.done)
	n := s.slotsFor(cfg)
	if err := s.acquire(ctx, n); err != nil {
		// Canceled while queued: no training happened, so there is no
		// partial result to hand back — unlike a running-job cancel.
		j.err = err
		j.status.Store(int32(StatusCanceled))
		return
	}
	defer s.release(n)
	// The job trains with exactly the worker count it holds slots for —
	// this is what makes MaxWorkers a real bound on goroutines, not just
	// an admission count. Safe: Workers is excluded from Config.Hash
	// because it never changes a result bit.
	cfg.Workers = n
	j.status.Store(int32(StatusRunning))
	// The job's ctx flows both into the training loop (epoch-granular
	// stop) and into the memo's singleflight wait, so Cancel works even
	// while this job is parked behind another service's identical run on
	// a shared Memo.
	res, err := s.opts.Memo.ResultFor(ctx, j.key, func() (*core.Result, error) {
		return core.TrainContext(ctx, g, prox, cfg, core.Hooks{
			Epoch: func(st core.EpochStats) { j.stats.Store(st) },
		})
	})
	j.res, j.err = res, err
	switch {
	case err != nil:
		// Includes a cancel while waiting on the singleflight: like a
		// queued cancel, no training of ours happened, so the error is
		// ctx.Err() and there is no partial result.
		if ctx.Err() != nil {
			j.status.Store(int32(StatusCanceled))
		} else {
			j.status.Store(int32(StatusFailed))
		}
	case res.Stopped == core.StopCanceled:
		j.status.Store(int32(StatusCanceled))
	default:
		j.status.Store(int32(StatusDone))
	}
}
