// Package service is the serving layer over the trainer: a job queue that
// runs SE-PrivGEmb training requests concurrently while
// (a) bounding the total worker goroutines across all running jobs,
// (b) admitting queued jobs in priority order (higher JobSpec.Priority
// first, FIFO within a priority),
// (c) enforcing per-tenant in-flight quotas (ErrQuotaExceeded, which the
// HTTP front-end maps to 429),
// (d) deduplicating identical submissions — same graph fingerprint,
// structure preference, and result-shaping config — through the sweep
// cache's result memo (experiments.Memo.ResultFor), so a popular
// (graph, proximity, config) trains once no matter how many callers ask
// or which transport (HTTP or Go) they arrive by, and
// (e) optionally persisting completed results to an on-disk artifact
// store, so a restarted process serves them without retraining.
//
// Submissions arrive either as live Go objects (Submit) or as declarative,
// wire-codable specs (SubmitSpec, the currency of the HTTP front-end in
// internal/server); both resolve onto the same job table, so dedup holds
// across transports.
//
// Determinism carries through unchanged: a job's output depends only on
// its (graph, proximity, config), never on queue order, priority,
// concurrency, or which submission of a deduplicated group actually
// trained.
package service

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"seprivgemb/internal/core"
	"seprivgemb/internal/experiments"
	"seprivgemb/internal/graph"
	"seprivgemb/internal/mathx"
	"seprivgemb/internal/methods"
	"seprivgemb/internal/proximity"
	"seprivgemb/internal/replica"
	"seprivgemb/internal/spec"
	"seprivgemb/internal/stream"
)

// ErrQuotaExceeded reports a submission rejected because its tenant is at
// its in-flight job limit. Test with errors.Is; the HTTP layer maps it to
// 429 Too Many Requests.
var ErrQuotaExceeded = errors.New("service: tenant in-flight quota exceeded")

// ErrInvalidSpec reports a JobSpec that failed validation or resolution
// (unknown dataset or measure, malformed edge list, missing file, bad
// hyperparameters). The HTTP layer maps it to 400 Bad Request.
var ErrInvalidSpec = errors.New("service: invalid job spec")

// ErrClosed reports a submission after Close. The HTTP layer maps it to
// 503 Service Unavailable.
var ErrClosed = errors.New("service: submit after Close")

// Options configures a Service.
type Options struct {
	// MaxWorkers bounds the total training-worker slots across all
	// concurrently running jobs; 0 defaults to GOMAXPROCS. A job consumes
	// max(1, min(cfg.Workers, MaxWorkers)) slots while it runs, so a
	// single wide job can never starve the service of slots it could
	// legally grant.
	MaxWorkers int
	// Memo supplies the result/artifact cache. Sharing one Memo between a
	// Service and an experiments sweep shares their caches; nil gets the
	// service a private Memo bounded by MemoLimits.
	Memo *experiments.Memo
	// MemoLimits bounds the private Memo created when Memo is nil (TTL +
	// max-entry LRU eviction of memoized results). Ignored when Memo is
	// supplied — the owner of a shared Memo sets its own limits.
	MemoLimits experiments.Limits
	// TenantInflight caps how many unfinished jobs one tenant may have
	// created at a time; further SubmitSpec calls fail with
	// ErrQuotaExceeded until one finishes. 0 disables quotas. A below-cap
	// tenant adopting an existing deduplicated job is not charged (no new
	// work is admitted) — but a tenant AT its cap is refused outright,
	// even for a spec that would have deduplicated: the quota check runs
	// before resolution so a rejected request cannot cost the server
	// anything, and dedup cannot be established without resolving. Poll
	// by job ID rather than resubmitting.
	TenantInflight int
	// GraphDir is the root directory for JobSpec file graph sources.
	// Empty rejects file sources outright.
	GraphDir string
	// ArtifactDir, when non-empty, persists every completed training
	// result as a gob artifact (chunked checkpoint framing) and serves
	// identical future submissions from disk across process restarts.
	ArtifactDir string
	// MaxTrainingBytes caps the resident training-state footprint a single
	// job may claim: the dense 2·|V|·r·8 weight bytes for in-memory runs,
	// or the job's MemoryBudget when it selects the spill tier. Jobs over
	// the cap are rejected at admission with ErrInvalidSpec (→ 400), with
	// an error that names the budget that would make the job admissible —
	// the server-side lever that turns "this graph is too big" into "set
	// memoryBudget and resubmit". 0 disables the cap.
	MaxTrainingBytes int64
	// Replica, when non-nil, makes this service one member of a
	// shared-nothing replica set over ArtifactDir (which must then be
	// set): before training a job, the service leases its ownership
	// through the manager, trains only when it wins, and otherwise
	// follows — polling the shared store until the owner's artifact
	// lands (or the owner's lease expires, at which point it contends
	// for takeover). Every replica serves any job's rows straight off
	// the shared store, owner or not.
	Replica *replica.Manager
}

// Status is a Job's lifecycle state.
type Status int32

const (
	// StatusQueued: submitted, waiting for worker slots.
	StatusQueued Status = iota
	// StatusRunning: training (or waiting on a deduplicated twin's run).
	StatusRunning
	// StatusDone: finished; Result returns the embedding.
	StatusDone
	// StatusFailed: finished with an error.
	StatusFailed
	// StatusCanceled: canceled; Result may hold a partial, resumable run.
	StatusCanceled
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", int32(s))
	}
}

// Service queues, deduplicates, and runs training jobs. Construct with New;
// the zero value is not usable.
type Service struct {
	opts  Options
	store *Store
	// lease is the replica-set ownership manager (nil outside replica
	// mode); events fans per-job progress out to SSE subscribers.
	lease  *replica.Manager
	events *stream.Broker

	mu      sync.Mutex
	free    int        // unclaimed worker slots (of opts.MaxWorkers)
	pending waiterHeap // jobs waiting for slots, priority-ordered
	seq     uint64     // arrival order, tie-breaks equal priorities
	jobs    map[experiments.ResultKey]*Job
	byID    map[string]*Job
	tenants map[string]int // unfinished jobs per tenant
	sweeps  map[string]*Sweep
	closed  bool
	wg      sync.WaitGroup

	// trainings counts actual tr.Train invocations — NOT submissions, memo
	// hits, or artifact loads. The observable half of the dedup contract:
	// a resubmitted sweep asserting "zero retraining" asserts this counter.
	trainings atomic.Uint64
}

// Trainings returns how many training runs this service has actually
// executed (memo and artifact hits excluded). A re-served result of any
// kind leaves it unchanged, which is what makes it the right assertion for
// cache-hit tests.
func (s *Service) Trainings() uint64 { return s.trainings.Load() }

// New returns a Service ready to accept submissions. It panics only on
// unusable ArtifactDir (fail fast at construction, not mid-job); every
// runtime failure is reported per job.
func New(opts Options) *Service {
	if opts.MaxWorkers < 1 {
		opts.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.Memo == nil {
		opts.Memo = experiments.NewMemoLimited(opts.MemoLimits)
	}
	s := &Service{
		opts:    opts,
		free:    opts.MaxWorkers,
		jobs:    make(map[experiments.ResultKey]*Job),
		byID:    make(map[string]*Job),
		tenants: make(map[string]int),
		sweeps:  make(map[string]*Sweep),
	}
	s.events = stream.NewBroker()
	if opts.ArtifactDir != "" {
		store, err := NewStore(opts.ArtifactDir)
		if err != nil {
			panic(fmt.Sprintf("service: artifact store: %v", err))
		}
		s.store = store
		// Startup janitor: clear expired leases (takeover hygiene — a
		// replica restarting after a crash must not be blocked by its own
		// corpse) and crashed writers' tmp partials. Best effort; a
		// read-only directory degrades to no sweeping, not no serving.
		_, _, _ = store.Sweep(startupSweepAge)
	}
	if opts.Replica != nil {
		if s.store == nil {
			panic("service: Options.Replica requires ArtifactDir (the lease substrate is the shared store)")
		}
		s.lease = opts.Replica
	}
	return s
}

// waiter is one queued job's claim on worker slots. priority, granted and
// index are guarded by the Service mutex; ready is closed exactly once,
// under that mutex, when the claim is granted.
type waiter struct {
	j        *Job
	n        int
	priority int
	seq      uint64
	index    int
	granted  bool
	ready    chan struct{}
}

// waiterHeap orders pending claims: higher priority first, FIFO within a
// priority. It implements container/heap.
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	w := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return w
}

// dispatchLocked grants slots strictly in heap order: the head claim waits
// until its full width fits, and nothing behind it may jump the queue (a
// lower-priority narrow job must not starve a higher-priority wide one).
// Claims are clamped to MaxWorkers at submission, so the head always
// eventually fits. Callers hold s.mu.
func (s *Service) dispatchLocked() {
	for len(s.pending) > 0 && s.pending[0].n <= s.free {
		w := heap.Pop(&s.pending).(*waiter)
		w.granted = true
		if w.j != nil {
			w.j.waiter = nil
		}
		s.free -= w.n
		close(w.ready)
	}
}

// acquire claims n worker slots at j's (possibly boosted — see submit's
// adoption path) priority, or returns ctx.Err if the job is canceled
// while queued. A cancellation that races an in-flight grant returns the
// slots and still reports the cancel — a canceled job must never start
// training.
func (s *Service) acquire(ctx context.Context, j *Job, n int) error {
	w := &waiter{j: j, n: n, ready: make(chan struct{})}
	s.mu.Lock()
	w.priority = int(j.priority.Load())
	s.seq++
	w.seq = s.seq
	if j != nil {
		j.waiter = w
	}
	heap.Push(&s.pending, w)
	s.dispatchLocked()
	s.mu.Unlock()
	select {
	case <-w.ready:
		if err := ctx.Err(); err != nil {
			s.release(n)
			return err
		}
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		defer s.mu.Unlock()
		if w.granted {
			// The grant won the race; undo it.
			s.free += w.n
			s.dispatchLocked()
		} else {
			heap.Remove(&s.pending, w.index)
			if w.j != nil {
				w.j.waiter = nil
			}
		}
		return ctx.Err()
	}
}

// release returns n slots and re-runs admission.
func (s *Service) release(n int) {
	s.mu.Lock()
	s.free += n
	s.dispatchLocked()
	s.mu.Unlock()
}

// Job is the handle to one submitted training run.
type Job struct {
	id     string
	key    experiments.ResultKey
	tenant string
	// priority is atomic because an adoption can boost it (see submit)
	// while the HTTP layer reads it for display.
	priority atomic.Int32
	// waiter is the job's queued slot claim, nil unless waiting; guarded
	// by the Service mutex (adoption boosts re-heap through it).
	waiter *waiter
	cancel context.CancelFunc
	done   chan struct{}

	status atomic.Int32
	// canceled is set synchronously by Cancel, ahead of the (async)
	// status transition, so Submit's dedup never hands out a job that is
	// already doomed.
	canceled atomic.Bool
	stats    atomic.Value // core.EpochStats of the latest completed epoch

	// holders counts the independent submissions deduplicated onto this
	// job: 1 at creation, +1 per adoption. A sweep canceling its cells
	// skips any job with other holders — cancellation must not reach
	// through dedup into work someone else is still waiting on.
	holders atomic.Int32

	// Lifecycle timeline. submittedAt is set once before the run goroutine
	// starts; startedAt/finishedAt are atomically published at the status
	// transitions they mirror (startedAt stays zero for a job canceled
	// while queued).
	submittedAt time.Time
	startedAt   atomic.Int64 // UnixNano; 0 = not started
	finishedAt  atomic.Int64 // UnixNano; 0 = not finished

	// res/err are written once, before done is closed.
	res *core.Result
	err error

	// hashOnce caches the full-embedding digest: clients paging through a
	// large result re-fetch the hash with every window, and recomputing
	// an O(|V|·r) FNV per page would turn pagination's memory win into a
	// CPU loss.
	hashOnce sync.Once
	hashVal  uint64
	hashOK   bool
}

// ID returns the job's stable identifier: a pure function of its
// deduplication key, so the same logical job carries the same ID over
// every transport, process, and resubmission.
func (j *Job) ID() string { return j.id }

// Key returns the job's deduplication key.
func (j *Job) Key() experiments.ResultKey { return j.key }

// Tenant returns the tenant recorded at submission ("" for the Go API).
func (j *Job) Tenant() string { return j.tenant }

// Method returns the canonical name of the training method this job runs.
func (j *Job) Method() string { return keyMethod(j.key) }

// Priority returns the job's effective admission priority: the highest
// priority any deduplicated submitter asked for (adoption boosts, never
// lowers, so a high-priority caller is not stuck behind the original
// submitter's patience).
func (j *Job) Priority() int { return int(j.priority.Load()) }

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status { return Status(j.status.Load()) }

// Progress returns the latest per-epoch stats and whether any epoch has
// completed yet. For a deduplicated job the stats come from whichever
// submission is actually training.
func (j *Job) Progress() (core.EpochStats, bool) {
	st, ok := j.stats.Load().(core.EpochStats)
	return st, ok
}

// Done returns a channel closed when the job finishes (any terminal status).
func (j *Job) Done() <-chan struct{} { return j.done }

// Holders returns how many independent submissions this job currently
// serves (1 + adoptions).
func (j *Job) Holders() int { return int(j.holders.Load()) }

// Timing returns the job's lifecycle timeline: when it was accepted, when
// it acquired worker slots, and when it reached a terminal status. started
// and finished are zero until the corresponding transition happens.
func (j *Job) Timing() (submitted, started, finished time.Time) {
	submitted = j.submittedAt
	if ns := j.startedAt.Load(); ns != 0 {
		started = time.Unix(0, ns)
	}
	if ns := j.finishedAt.Load(); ns != 0 {
		finished = time.Unix(0, ns)
	}
	return submitted, started, finished
}

// Cancel requests cancellation. The training loop stops at the next epoch
// boundary with a partial, resumable Result. Canceling a job cancels the
// underlying run for every submission deduplicated onto it.
func (j *Job) Cancel() {
	j.canceled.Store(true)
	j.cancel()
}

// Wait blocks until the job finishes or ctx is done. On job completion it
// returns Result's values. A job canceled while RUNNING returns its
// partial result (non-nil, with Result.Stopped == core.StopCanceled and a
// resumable checkpoint) and no error — matching core.TrainContext; a job
// canceled while still QUEUED never trained, so it returns
// (nil, context.Canceled).
//
// The returned Result is shared by every submission deduplicated onto
// this job (and by the memo serving later identical submissions): treat
// it as read-only. Scoring and evaluation only ever read the embedding.
func (j *Job) Wait(ctx context.Context) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result returns the job's outcome; it must only be called after Done is
// closed (use Wait otherwise).
func (j *Job) Result() (*core.Result, error) {
	select {
	case <-j.done:
		return j.res, j.err
	default:
		panic("service: Result called before the job finished")
	}
}

// EmbeddingHash returns the FNV-1a digest of the job's full embedding
// (mathx.DigestFloat64s over the row-major float64 bits of Win), false if
// the job has not finished or finished without a result. The digest is
// computed once per job and cached: every row window served from this job
// reports it, so a client can verify any page against the full matrix.
func (j *Job) EmbeddingHash() (uint64, bool) {
	select {
	case <-j.done:
	default:
		return 0, false
	}
	j.hashOnce.Do(func() {
		if j.res != nil && j.res.Model != nil {
			j.hashVal = mathx.DigestMat(j.res.Model.Win)
			j.hashOK = true
		}
	})
	return j.hashVal, j.hashOK
}

// JobID returns the stable job identifier for a deduplication key (the ID
// a submission with that key would receive). The default method keeps the
// pre-registry hash preimage, so every job ID (and on-disk artifact) minted
// before methods existed still resolves to the same sepriv job; non-default
// methods prepend their name, which is what keeps two methods over one
// (graph, proximity, config) from ever colliding.
func JobID(key experiments.ResultKey) string {
	h := fnv.New64a()
	if m := keyMethod(key); m != methods.Default {
		fmt.Fprintf(h, "%s|", m)
	}
	fmt.Fprintf(h, "%016x|%s|%016x", key.Graph, key.Proximity, key.Config)
	return fmt.Sprintf("j%016x", h.Sum64())
}

// keyMethod returns the key's method, normalizing the pre-registry empty
// field to the default method so old and new keys mean the same job.
func keyMethod(key experiments.ResultKey) string {
	if key.Method == "" {
		return methods.Default
	}
	return key.Method
}

// JobByID returns the job currently registered under id. After a failed or
// canceled job is resubmitted, the ID resolves to its replacement (the
// superseded handle keeps working for callers that hold it).
func (s *Service) JobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// ResultRows returns rows [lo, hi) of a finished job's embedding — the
// row-range serving path. With an artifact store configured (and the job
// completed, so its artifact is authoritative) the window is decoded
// straight from the persisted artifact through its row-offset index, at
// O(window·r) memory regardless of |V|; otherwise it falls back to an
// O(1) view of the in-memory result. Either way the window carries the
// full-embedding digest, so callers can verify a page against the hash
// the whole-result API reports. The window's matrix may alias the shared
// Result: treat it as read-only.
func (s *Service) ResultRows(id string, lo, hi int) (*core.EmbeddingWindow, error) {
	j, ok := s.JobByID(id)
	if !ok {
		// Not our job — but in a replica set it may be a peer's, and a
		// completed peer job's artifact sits in the shared store under
		// this very ID. Serving it straight off disk is what lets a
		// client fetch rows from ANY replica, not just the one that
		// happened to train.
		if s.store != nil {
			if w, err := s.store.LoadRowsByID(id, lo, hi); err == nil {
				return w, nil
			}
		}
		return nil, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.done:
	default:
		return nil, fmt.Errorf("service: job %s has not finished", id)
	}
	res, err := j.Result()
	if err != nil || res == nil {
		if err == nil {
			err = fmt.Errorf("service: job %s finished without a result", id)
		}
		return nil, err
	}
	// A canceled partial is never persisted, and a stale artifact under
	// the same key (e.g. a completed run from a previous process) would
	// serve rows from a DIFFERENT matrix than the one this job reports —
	// so the disk path is reserved for completed runs.
	if s.store != nil && res.Stopped != core.StopCanceled {
		if w, err := s.store.LoadRows(j.key, lo, hi); err == nil {
			return w, nil
		}
		// Any store miss (no artifact, legacy format without an index,
		// corruption) falls back to memory; the in-memory result is
		// authoritative and the window contract is identical.
	}
	m, err := res.Rows(lo, hi)
	if err != nil {
		return nil, err
	}
	hash, _ := j.EmbeddingHash()
	emb := res.Embedding()
	return &core.EmbeddingWindow{
		Lo: lo, Hi: hi,
		TotalRows: emb.Rows,
		Dim:       emb.Cols,
		Rows:      m,
		FullHash:  hash,
	}, nil
}

// Submit enqueues a training run of the default method (sepriv) at default
// priority with no tenant and returns its Job — the in-process Go API. If
// an identical submission — equal method, graph fingerprint, proximity
// name, and result-shaping config (core.Config.Hash, which ignores
// Workers) — is already queued, running, or completed, that existing Job is
// returned instead of starting a duplicate; failed or canceled predecessors
// are replaced by a fresh run.
func (s *Service) Submit(g *graph.Graph, prox proximity.Proximity, cfg core.Config) (*Job, error) {
	return s.SubmitMethod(methods.Default, g, prox, cfg)
}

// SubmitMethod is Submit for an explicit registry method ("sepriv",
// "dpggan", "dpgvae", "gap", "progap"). The method is part of the
// deduplication key, so distinct methods over one (graph, proximity,
// config) are distinct jobs with distinct IDs and artifacts. Unknown
// methods and configs the method rejects (e.g. a non-positive privacy
// budget for a baseline) fail with ErrInvalidSpec.
func (s *Service) SubmitMethod(method string, g *graph.Graph, prox proximity.Proximity, cfg core.Config) (*Job, error) {
	if err := methods.ValidateConfig(method, g, cfg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	return s.submit(method, g, prox, cfg, 0, "", false)
}

// SubmitSpec resolves a declarative JobSpec — graph source, proximity by
// name, wire config — and enqueues it with the spec's priority and tenant.
// The single submission currency of the serving surface: the HTTP
// front-end and Go callers both land here, so identical specs deduplicate
// across transports onto one training run. Resolution reuses the memo for
// simulated datasets; proximity materialization is deferred into the
// admitted run (see run), so submission stays cheap.
func (s *Service) SubmitSpec(sp spec.JobSpec) (*Job, error) {
	if err := sp.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	// Admission pre-checks BEFORE resolution: a rejected request must not
	// cost the server anything durable — resolving first would let a
	// tenant at its quota (or a caller racing Close) grow the memo's
	// graph cache with every 429/503 it is about to receive. The
	// authoritative re-check happens in submit under the same mutex; this
	// one can spuriously admit during a race, never spuriously charge.
	// The trade-off: a tenant at its cap is refused even a deduplicating
	// resubmission, because telling dedup from new work requires the
	// resolved graph — admission control wins over adoption convenience.
	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		return nil, ErrClosed
	case s.opts.TenantInflight > 0 && s.tenants[sp.Tenant] >= s.opts.TenantInflight:
		n := s.tenants[sp.Tenant]
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q already has %d unfinished jobs",
			ErrQuotaExceeded, sp.Tenant, n)
	}
	s.mu.Unlock()
	g, prox, cfg, err := s.resolve(sp)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	// Method-specific config validation needs the resolved graph (batch
	// clamping) and so runs after resolution but before admission: a
	// baseline spec with a non-positive privacy budget must be a 400, not a
	// job that fails at training time.
	if err := methods.ValidateConfig(sp.Method, g, cfg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	return s.submit(sp.Method, g, prox, cfg, sp.Priority, sp.Tenant, true)
}

// submit is the shared admission path of both transports. materialize
// asks the run to swap the (cheap, lazy) proximity for the memo's
// materialized matrix once it holds worker slots (only honoured for
// methods that consume proximity). The method name is canonicalized into
// the key here, so "" and "sepriv" — and any future alias — land on one
// job.
func (s *Service) submit(method string, g *graph.Graph, prox proximity.Proximity, cfg core.Config, priority int, tenant string, materialize bool) (*Job, error) {
	mname, err := methods.Canonical(method)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	// Per-job memory admission: a job's resident training state — its
	// MemoryBudget on the spill tier, the dense 2·|V|·r·8 bytes otherwise —
	// must fit the server's cap. Rejecting here (not at training time)
	// keeps an oversized graph a 400 with an actionable remedy: the error
	// names the spill budget that would make the same spec admissible.
	if limit := s.opts.MaxTrainingBytes; limit > 0 {
		if need := cfg.TrainingStateBytes(g.NumNodes()); need > limit {
			if min := cfg.MinMemoryBudget(g.NumNodes()); mname == methods.Default && min <= limit {
				return nil, fmt.Errorf("%w: training state (%d bytes) exceeds the server's %d-byte cap; set config.memoryBudget between %d and %d to train under the cap",
					ErrInvalidSpec, need, limit, min, limit)
			}
			return nil, fmt.Errorf("%w: training state (%d bytes) exceeds the server's %d-byte cap",
				ErrInvalidSpec, need, limit)
		}
	}
	key := experiments.ResultKey{
		Method:    mname,
		Graph:     g.Fingerprint(),
		Proximity: prox.Name(),
		Config:    cfg.Hash(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if j, ok := s.jobs[key]; ok {
		st := j.Status()
		// canceled.Load() covers the window between a Cancel call and the
		// run goroutine observing it: a doomed job must not adopt new
		// submitters. Adoption is quota-free — no new training starts —
		// but it boosts a still-queued job to the adopter's priority, so
		// an urgent caller is never stuck behind the first submitter's
		// patience.
		if st != StatusFailed && st != StatusCanceled && !j.canceled.Load() {
			j.holders.Add(1)
			if priority > int(j.priority.Load()) {
				j.priority.Store(int32(priority))
				if w := j.waiter; w != nil {
					w.priority = priority
					heap.Fix(&s.pending, w.index)
				}
			}
			return j, nil
		}
	}
	if s.opts.TenantInflight > 0 && s.tenants[tenant] >= s.opts.TenantInflight {
		return nil, fmt.Errorf("%w: tenant %q already has %d unfinished jobs",
			ErrQuotaExceeded, tenant, s.tenants[tenant])
	}
	s.tenants[tenant]++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:          JobID(key),
		key:         key,
		tenant:      tenant,
		cancel:      cancel,
		done:        make(chan struct{}),
		submittedAt: time.Now(),
	}
	j.holders.Store(1)
	j.priority.Store(int32(priority))
	s.jobs[key] = j
	s.byID[j.id] = j
	s.wg.Add(1)
	go s.run(ctx, j, g, prox, cfg, materialize)
	return j, nil
}

// Close stops accepting submissions and waits for every in-flight job to
// finish. It does not cancel them; call Cancel on individual jobs first for
// a fast shutdown.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}

// CancelAll cancels every job that has not finished yet (the fast-shutdown
// half of a graceful stop: CancelAll, then Close).
func (s *Service) CancelAll() {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		select {
		case <-j.done:
		default:
			j.Cancel()
		}
	}
}

// slotsFor returns how many worker slots a config consumes.
func (s *Service) slotsFor(cfg core.Config) int {
	n := cfg.Workers
	if n < 1 {
		n = 1
	}
	if n > s.opts.MaxWorkers {
		n = s.opts.MaxWorkers
	}
	return n
}

// finish settles a job's bookkeeping after its terminal status is set.
func (s *Service) finish(j *Job) {
	s.mu.Lock()
	if s.tenants[j.tenant]--; s.tenants[j.tenant] <= 0 {
		delete(s.tenants, j.tenant)
	}
	s.mu.Unlock()
}

// run executes one job: wait for slots (priority-ordered), train through
// the result memo — consulting the artifact store on a memo miss and
// persisting fresh completions — and publish the outcome.
func (s *Service) run(ctx context.Context, j *Job, g *graph.Graph, prox proximity.Proximity, cfg core.Config, materialize bool) {
	defer s.wg.Done()
	defer close(j.done)
	defer s.finish(j)
	// The finish stamp lands before done closes (defers run LIFO), so a
	// waiter woken by Done always observes a non-zero finishedAt.
	defer func() { j.finishedAt.Store(time.Now().UnixNano()) }()
	// The terminal stream event is published first of all the defers:
	// every exit path below has stored its terminal status by the time it
	// returns, and SSE subscribers must see the event no matter which
	// path ended the job.
	defer s.publishTerminal(j)
	n := s.slotsFor(cfg)
	if err := s.acquire(ctx, j, n); err != nil {
		// Canceled while queued: no training happened, so there is no
		// partial result to hand back — unlike a running-job cancel.
		j.err = err
		j.status.Store(int32(StatusCanceled))
		return
	}
	defer s.release(n)
	// The job trains with exactly the worker count it holds slots for —
	// this is what makes MaxWorkers a real bound on goroutines, not just
	// an admission count. Safe: Workers is excluded from Config.Hash
	// because it never changes a result bit.
	cfg.Workers = n
	j.startedAt.Store(time.Now().UnixNano())
	j.status.Store(int32(StatusRunning))
	tr, err := methods.Get(j.key.Method)
	if err != nil {
		// Unreachable after submit's canonicalization; belt-and-braces for a
		// key restored from elsewhere.
		j.err = err
		j.status.Store(int32(StatusFailed))
		return
	}
	// Spec-resolved jobs swap the lazy measure for the memo's materialized
	// matrix HERE, under the slots just acquired — submission-time
	// materialization would run outside the worker budget and block the
	// transport. Safe to swap: lazy At and materialized rows are
	// bit-identical for every registered measure (the dedup contract,
	// proximity.TestAtMatchesMaterializedEverywhere). Methods that never
	// read the proximity (the feature-based baselines) skip the build; the
	// measure still participates in the dedup key.
	if materialize && tr.UsesProximity() {
		mp, err := s.opts.Memo.Proximity(g, prox.Name(), n)
		if err != nil {
			j.err = err
			j.status.Store(int32(StatusFailed))
			return
		}
		prox = mp
	}
	// The job's ctx flows both into the training loop (epoch-granular
	// stop) and into the memo's singleflight wait, so Cancel works even
	// while this job is parked behind another service's identical run on
	// a shared Memo.
	res, err := s.opts.Memo.ResultFor(ctx, j.key, func() (*core.Result, error) {
		return s.trainOrFollow(ctx, j, tr, g, prox, cfg)
	})
	j.res, j.err = res, err
	switch {
	case err != nil:
		// Includes a cancel while waiting on the singleflight: like a
		// queued cancel, no training of ours happened, so the error is
		// ctx.Err() and there is no partial result.
		if ctx.Err() != nil {
			j.status.Store(int32(StatusCanceled))
		} else {
			j.status.Store(int32(StatusFailed))
		}
	case res.Stopped == core.StopCanceled:
		j.status.Store(int32(StatusCanceled))
	default:
		j.status.Store(int32(StatusDone))
	}
}

// trainOrFollow produces the job's result under the replica-set ownership
// protocol. Without a lease manager it trains directly (the single-
// instance path, store-cached as before). With one, the loop per
// iteration: serve the artifact if a peer already landed it; try to
// acquire the job's lease and train if this replica wins (heartbeating
// for the duration, persisting the artifact BEFORE releasing so no peer
// can observe a gap between "lease gone" and "result present"); otherwise
// follow — sleep a poll interval and re-check. A crashed owner stops
// heartbeating, its lease expires, and the next iteration's Acquire takes
// the job over, which is what makes every submitted spec eventually train
// exactly once on exactly one live replica.
func (s *Service) trainOrFollow(ctx context.Context, j *Job, tr methods.Trainer, g *graph.Graph, prox proximity.Proximity, cfg core.Config) (*core.Result, error) {
	for {
		if s.store != nil {
			if cached, ok := s.store.Load(j.key); ok {
				return cached, nil
			}
		}
		if s.lease == nil {
			return s.train(ctx, j, tr, g, prox, cfg)
		}
		owned, err := s.lease.Acquire(j.id)
		if err == nil && owned {
			stop := s.lease.KeepAlive(j.id)
			res, terr := s.train(ctx, j, tr, g, prox, cfg)
			// train persists the artifact before returning, so the
			// release below never exposes a trained-but-unpublished job.
			stop()
			s.lease.Release(j.id)
			return res, terr
		}
		// Follower: a peer owns the job (or the lease directory hiccuped
		// — an I/O error is retried on the same cadence rather than
		// failing a job a peer may be happily training).
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(s.lease.PollInterval()):
		}
	}
}

// train runs the actual training, publishing per-epoch progress to both
// the polled job view and the event stream, and persists completed
// results to the store before returning.
func (s *Service) train(ctx context.Context, j *Job, tr methods.Trainer, g *graph.Graph, prox proximity.Proximity, cfg core.Config) (*core.Result, error) {
	s.trainings.Add(1)
	res, err := tr.Train(ctx, g, prox, cfg, core.Hooks{
		Epoch: func(st core.EpochStats) {
			j.stats.Store(st)
			s.events.Publish(j.id, spec.JobEvent{Type: "epoch", Progress: spec.ProgressFrom(st)})
		},
	})
	if err == nil && res.Stopped != core.StopCanceled && s.store != nil {
		// Best-effort persistence: a failed write degrades restart
		// warmth, never the in-flight response.
		_ = s.store.Save(j.key, res)
	}
	return res, err
}

// publishTerminal emits the job's exactly-once terminal stream event,
// mirroring the terminal status the polled view reports. Done events
// carry the full-embedding digest so a streaming client can hand off to
// the row-window API and verify pages without another round trip.
func (s *Service) publishTerminal(j *Job) {
	ev := spec.JobEvent{Status: j.Status().String()}
	switch j.Status() {
	case StatusDone:
		ev.Type = "done"
		if j.res != nil && j.res.Model != nil {
			ev.EmbeddingHash = fmt.Sprintf("%016x", mathx.DigestMat(j.res.Model.Win))
		}
	case StatusFailed:
		ev.Type = "failed"
		if j.err != nil {
			ev.Error = j.err.Error()
		}
	case StatusCanceled:
		ev.Type = "canceled"
		if j.err != nil {
			ev.Error = j.err.Error()
		}
	default:
		// Not terminal (unreachable from run's exit paths); publish
		// nothing rather than a lying event.
		return
	}
	s.events.Publish(j.id, ev)
}

// Subscribe returns the live event stream of a job by ID: a replay of the
// latest epoch event (if any), then events as they happen, ending with
// the terminal event, after which the channel closes. Always call the
// cancel function. Subscribing to an ID this process has never seen
// yields a stream that emits nothing until such a job is submitted — the
// HTTP layer pairs this with the store-polling path for jobs owned
// elsewhere in a replica set.
func (s *Service) Subscribe(jobID string) (<-chan spec.JobEvent, func()) {
	return s.events.Subscribe(jobID)
}

// ArtifactMeta returns the persisted result metadata for a job ID served
// from the shared artifact store — the replica-set path for jobs this
// process never ran. False without a store or a matching artifact.
func (s *Service) ArtifactMeta(id string) (*ArtifactMeta, bool) {
	if s.store == nil {
		return nil, false
	}
	return s.store.MetaByID(id)
}

// HasStore reports whether this service persists and serves artifacts.
func (s *Service) HasStore() bool { return s.store != nil }

// ReplicaManager returns the replica-set lease manager, nil outside
// replica mode — the health endpoint reports its identity and held
// leases.
func (s *Service) ReplicaManager() *replica.Manager { return s.lease }
