package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"seprivgemb/internal/replica"
	"seprivgemb/internal/spec"
)

// replicaService stands up one member of a replica set: its own Service
// (own memo, own queue) with a lease manager over the shared dir.
func replicaService(t *testing.T, dir, id string, ttl time.Duration) *Service {
	t.Helper()
	mgr, err := replica.NewManager(dir, id, ttl)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{MaxWorkers: 2, ArtifactDir: dir, Replica: mgr})
	t.Cleanup(func() { s.CancelAll(); s.Close() })
	return s
}

// waitSpec submits sp and waits it to a result.
func waitSpec(t *testing.T, s *Service, sp spec.JobSpec) (*Job, uint64) {
	t.Helper()
	j, err := s.SubmitSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return j, hash64(res.Embedding().Data)
}

// TestReplicaSetSingleTraining: a spec submitted to replica A and then to
// replica B over the same store trains exactly once in the whole set, and
// B serves the identical bits — both through its own job and through the
// by-ID path a third replica would use.
func TestReplicaSetSingleTraining(t *testing.T) {
	dir := t.TempDir()
	a := replicaService(t, dir, "a", 0)
	b := replicaService(t, dir, "b", 0)

	jA, hashA := waitSpec(t, a, ringSpec())
	jB, hashB := waitSpec(t, b, ringSpec())

	if jA.ID() != jB.ID() {
		t.Fatalf("same spec got different IDs across replicas: %s vs %s", jA.ID(), jB.ID())
	}
	if hashA != hashB {
		t.Fatalf("replicas served different bits: %016x vs %016x", hashA, hashB)
	}
	if total := a.Trainings() + b.Trainings(); total != 1 {
		t.Fatalf("replica set trained %d times, want exactly 1 (a=%d, b=%d)",
			total, a.Trainings(), b.Trainings())
	}

	// The by-ID store path: rows served with no Job and no key, exactly as
	// a replica that never saw the submission would serve them.
	winA, err := a.ResultRows(jA.ID(), 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	meta, ok := b.ArtifactMeta(jA.ID())
	if !ok {
		t.Fatal("ArtifactMeta miss for a persisted job")
	}
	if meta.Nodes != 20 || meta.Dim != 8 || meta.JobID != jA.ID() {
		t.Fatalf("artifact meta: %+v", meta)
	}
	winB, err := b.store.LoadRowsByID(jA.ID(), 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if hash64(winA.Rows.Data) != hash64(winB.Rows.Data) {
		t.Fatal("by-ID window diverges from the keyed window")
	}
	if winA.FullHash != winB.FullHash || winB.FullHash == 0 {
		t.Fatalf("full-matrix hashes diverge: %016x vs %016x", winA.FullHash, winB.FullHash)
	}
}

// TestReplicaRaceOneTrains is the two-process race condensed to one: two
// Services over one artifact dir race the same JobSpec concurrently.
// Exactly one may train (the lease arbitrates); both must finish with
// bit-identical embeddings. Run under -race in CI via `make race`.
func TestReplicaRaceOneTrains(t *testing.T) {
	dir := t.TempDir()
	a := replicaService(t, dir, "a", 0)
	b := replicaService(t, dir, "b", 0)

	var wg sync.WaitGroup
	hashes := make([]uint64, 2)
	for i, s := range []*Service{a, b} {
		wg.Add(1)
		go func(i int, s *Service) {
			defer wg.Done()
			_, hashes[i] = waitSpec(t, s, ringSpec())
		}(i, s)
	}
	wg.Wait()

	if hashes[0] != hashes[1] {
		t.Fatalf("racing replicas diverged: %016x vs %016x", hashes[0], hashes[1])
	}
	if total := a.Trainings() + b.Trainings(); total != 1 {
		t.Fatalf("race trained %d times, want exactly 1 (a=%d, b=%d)",
			total, a.Trainings(), b.Trainings())
	}
}

// TestReplicaTakeoverAfterOwnerCrash: the owner dies mid-train — modeled
// as a lease that was granted but will never be heartbeated — and a peer
// must wait out the TTL, take the lease over, retrain, and land on the
// bit-identical embedding.
func TestReplicaTakeoverAfterOwnerCrash(t *testing.T) {
	// Learn the job's identity and expected bits on a throwaway store.
	ref := replicaService(t, t.TempDir(), "ref", 0)
	jRef, wantHash := waitSpec(t, ref, ringSpec())

	dir := t.TempDir()
	// The "crashed" owner: grabs the lease with a short TTL and never
	// heartbeats — exactly what a kill -9 mid-train leaves behind.
	ghost, err := replica.NewManager(dir, "ghost", 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := ghost.Acquire(jRef.ID()); err != nil || !ok {
		t.Fatalf("ghost Acquire = (%v, %v)", ok, err)
	}

	b := replicaService(t, dir, "b", 250*time.Millisecond)
	start := time.Now()
	jB, gotHash := waitSpec(t, b, ringSpec())
	if jB.ID() != jRef.ID() {
		t.Fatalf("job ID drifted across stores: %s vs %s", jB.ID(), jRef.ID())
	}
	if gotHash != wantHash {
		t.Fatalf("takeover retrained to %016x, want the reference %016x", gotHash, wantHash)
	}
	if b.Trainings() != 1 {
		t.Fatalf("peer trained %d times, want 1", b.Trainings())
	}
	// The peer must have actually waited for the ghost's lease to die, not
	// barged past a live lease.
	if waited := time.Since(start); waited < 150*time.Millisecond {
		t.Fatalf("peer finished in %v — it cannot have honored the ghost's lease TTL", waited)
	}
	if li, ok := b.ReplicaManager().Owner(jRef.ID()); ok && li.Replica == "ghost" {
		t.Fatalf("ghost still owns the lease after takeover: %+v", li)
	}
}

// TestStartupSweepClearsExpiredLeases: constructing a Service over a dir
// littered with a dead replica's expired leases clears them (the startup
// janitor), so jobs are immediately acquirable.
func TestStartupSweepClearsExpiredLeases(t *testing.T) {
	dir := t.TempDir()
	ghost, err := replica.NewManager(dir, "ghost", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := ghost.Acquire("j00000000000000ff"); !ok {
		t.Fatal("ghost acquire failed")
	}
	time.Sleep(5 * time.Millisecond) // let the 1ms lease expire

	s := replicaService(t, dir, "fresh", 0)
	if li, ok := s.ReplicaManager().Owner("j00000000000000ff"); ok {
		t.Fatalf("expired lease survived the startup sweep: %+v", li)
	}
}
