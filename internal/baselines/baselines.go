// Package baselines defines the common interface and configuration of the
// four published competitors the paper evaluates against: DPGGAN and DPGVAE
// (Yang et al., IJCAI 2021), GAP (Sajadmanesh et al., USENIX Security 2023)
// and ProGAP (Sajadmanesh & Gatica-Perez, WSDM 2024).
//
// These are simplified-faithful Go reimplementations (DESIGN.md §2,
// substitution 2): each preserves the original's privacy mechanism — where
// noise is injected and how the budget is spent — on a compact MLP
// substrate, because those mechanisms are what the paper's comparative
// discussion attributes the utility rankings to.
package baselines

import (
	"seprivgemb/internal/graph"
	"seprivgemb/internal/mathx"
)

// Config collects the hyperparameters shared by all baseline methods.
type Config struct {
	Dim          int     // embedding dimension
	Epsilon      float64 // privacy budget ε
	Delta        float64 // failure probability δ
	Sigma        float64 // DPSGD noise multiplier (GAN/VAE baselines)
	Epochs       int     // maximum training epochs
	BatchSize    int     // per-epoch example batch
	LearningRate float64
	Clip         float64 // per-example gradient clipping threshold
	Hops         int     // aggregation hops/stages (GAP and ProGAP)
	Seed         uint64
}

// DefaultConfig mirrors the paper's shared evaluation settings where they
// apply (r=128, σ=5, δ=1e-5) with baseline-typical optimization defaults.
func DefaultConfig() Config {
	return Config{
		Dim:          128,
		Epsilon:      3.5,
		Delta:        1e-5,
		Sigma:        5,
		Epochs:       200,
		BatchSize:    64,
		LearningRate: 0.05,
		Clip:         1,
		Hops:         2,
	}
}

// Method is a private graph-embedding baseline: it trains on a graph and
// returns a |V|×Dim embedding matrix whose release satisfies the
// configured (ε, δ) guarantee under the method's own threat model.
type Method interface {
	Name() string
	Train(g *graph.Graph, cfg Config) (*mathx.Matrix, error)
}
