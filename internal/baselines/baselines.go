// Package baselines defines the common interface and configuration of the
// four published competitors the paper evaluates against: DPGGAN and DPGVAE
// (Yang et al., IJCAI 2021), GAP (Sajadmanesh et al., USENIX Security 2023)
// and ProGAP (Sajadmanesh & Gatica-Perez, WSDM 2024).
//
// These are simplified-faithful Go reimplementations (DESIGN.md §2,
// substitution 2): each preserves the original's privacy mechanism — where
// noise is injected and how the budget is spent — on a compact MLP
// substrate, because those mechanisms are what the paper's comparative
// discussion attributes the utility rankings to.
//
// Baselines follow the same serving contract as the core trainer: training
// honors context cancellation at epoch/hop granularity, every DP noise draw
// is addressed through a counter-based xrand.Stream (so repeated runs of
// one config are bit-identical, the dedup currency of internal/service),
// and a Result reports the privacy actually spent alongside the embedding.
package baselines

import (
	"context"
	"fmt"

	"seprivgemb/internal/graph"
	"seprivgemb/internal/mathx"
)

// Config collects the hyperparameters shared by all baseline methods.
type Config struct {
	Dim          int     // embedding dimension
	Epsilon      float64 // privacy budget ε
	Delta        float64 // failure probability δ
	Sigma        float64 // DPSGD noise multiplier (GAN/VAE baselines)
	Epochs       int     // maximum training epochs
	BatchSize    int     // per-epoch example batch
	LearningRate float64
	Clip         float64 // per-example gradient clipping threshold
	Hops         int     // aggregation hops/stages (GAP and ProGAP)
	Seed         uint64
}

// DefaultConfig mirrors the paper's shared evaluation settings where they
// apply (r=128, σ=5, δ=1e-5) with baseline-typical optimization defaults.
func DefaultConfig() Config {
	return Config{
		Dim:          128,
		Epsilon:      3.5,
		Delta:        1e-5,
		Sigma:        5,
		Epochs:       200,
		BatchSize:    64,
		LearningRate: 0.05,
		Clip:         1,
		Hops:         2,
	}
}

// Validate rejects configurations no baseline can train under — above all
// non-positive privacy budgets, which the methods previously accepted
// silently (ε ≤ 0 made the GAN/VAE accountant never stop and GAP's sigma
// calibration meaningless). The serving layer runs this at submission so
// an invalid budget is a 400, exactly like an invalid core.Config.
func (c Config) Validate() error {
	switch {
	case c.Dim < 1:
		return fmt.Errorf("baselines: dimension %d must be >= 1", c.Dim)
	case c.Epsilon <= 0:
		return fmt.Errorf("baselines: privacy budget epsilon %g must be positive", c.Epsilon)
	case c.Delta <= 0 || c.Delta >= 1:
		return fmt.Errorf("baselines: delta %g must lie in (0, 1)", c.Delta)
	case c.Sigma <= 0:
		return fmt.Errorf("baselines: noise multiplier sigma %g must be positive", c.Sigma)
	case c.Epochs < 1:
		return fmt.Errorf("baselines: epochs %d must be >= 1", c.Epochs)
	case c.BatchSize < 1:
		return fmt.Errorf("baselines: batch size %d must be >= 1", c.BatchSize)
	case c.LearningRate <= 0:
		return fmt.Errorf("baselines: learning rate %g must be positive", c.LearningRate)
	case c.Clip <= 0:
		return fmt.Errorf("baselines: clip threshold %g must be positive", c.Clip)
	case c.Hops < 1:
		return fmt.Errorf("baselines: hops %d must be >= 1", c.Hops)
	}
	return nil
}

// Result is the outcome of one baseline training run: the (ε, δ)-private
// embedding plus the budget bookkeeping the serving surface reports for
// every method uniformly.
type Result struct {
	// Embedding is the released |V|×Dim matrix.
	Embedding *mathx.Matrix
	// Epochs counts the completed training epochs (aggregation hops/stages
	// for the GAP family, whose "training" is the hop loop).
	Epochs int
	// EpsilonSpent is the ε certified at the configured δ; for the GAP
	// family the calibrated release spends the configured budget exactly.
	EpsilonSpent float64
	// DeltaSpent is the δ̂ certified at the configured ε.
	DeltaSpent float64
	// StoppedByBudget reports an accountant-forced early stop (the
	// premature convergence the paper attributes to the DPSGD baselines).
	StoppedByBudget bool
}

// Method is a private graph-embedding baseline: it trains on a graph and
// releases an embedding whose publication satisfies the configured (ε, δ)
// guarantee under the method's own threat model.
//
// The contract matches the core trainer's: Train checks cfg.Validate
// first, honors ctx at epoch/hop boundaries (a canceled run returns
// ctx.Err() and no partial — baselines are cheap enough to restart), and
// is bit-identical across repeated runs of one (graph, config) because
// all noise is drawn from counter-addressed streams.
type Method interface {
	Name() string
	Train(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error)
}
