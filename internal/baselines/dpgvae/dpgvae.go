// Package dpgvae implements a simplified-faithful DPGVAE baseline (Yang et
// al., IJCAI 2021): a variational autoencoder over node features trained
// end-to-end with DPSGD under an RDP accountant, publishing the encoder
// means μ as the node embedding.
//
// Simplifications vs. the original mirror dpggan's: JL-projected adjacency
// rows as inputs and compact MLPs, with the DPSGD budget mechanics — and
// therefore the premature-convergence behaviour at small ε — preserved.
package dpgvae

import (
	"context"
	"fmt"
	"math"

	"seprivgemb/internal/baselines"
	"seprivgemb/internal/dp"
	"seprivgemb/internal/graph"
	"seprivgemb/internal/mathx"
	"seprivgemb/internal/nn"
	"seprivgemb/internal/xrand"
)

// Method is the DPGVAE baseline.
type Method struct{}

// New returns the baseline.
func New() *Method { return &Method{} }

// Name implements baselines.Method.
func (*Method) Name() string { return "DPGVAE" }

// kl weight in the per-example loss.
const klWeight = 1e-3

// Train implements baselines.Method.
func (*Method) Train(ctx context.Context, g *graph.Graph, cfg baselines.Config) (*baselines.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("dpgvae: %w", err)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumNodes()
	if cfg.BatchSize > n {
		return nil, fmt.Errorf("dpgvae: batch %d exceeds %d nodes", cfg.BatchSize, n)
	}
	rng := xrand.New(cfg.Seed ^ 0x564145) // "VAE"
	// Counter-addressed DP noise, keyed (epoch, network): bit-identical
	// repeats of one config, independent of draw order (see dpggan).
	noise := xrand.NewStream(cfg.Seed ^ 0x564145)
	feat := baselines.ProjectAdjacency(g, cfg.Dim, rng)

	// Encoder emits [μ ‖ logvar]; decoder reconstructs the feature.
	enc := nn.NewMLP([]int{cfg.Dim, cfg.Dim, 2 * cfg.Dim},
		[]nn.Activation{nn.Tanh, nn.Identity}, rng)
	decoder := nn.NewMLP([]int{cfg.Dim, cfg.Dim, cfg.Dim},
		[]nn.Activation{nn.Tanh, nn.Identity}, rng)

	acct := dp.NewAccountant(nil)
	gamma := float64(cfg.BatchSize) / float64(n)

	encBatch, encOne := nn.NewGrads(enc), nn.NewGrads(enc)
	decBatch, decOne := nn.NewGrads(decoder), nn.NewGrads(decoder)
	var encCache, decCache nn.Cache
	zEps := make([]float64, cfg.Dim)
	zSample := make([]float64, cfg.Dim)
	dRecon := make([]float64, cfg.Dim)
	dEncOut := make([]float64, 2*cfg.Dim)
	epochs, stoppedByBudget := 0, false
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		encBatch.Zero()
		decBatch.Zero()
		for _, u := range rng.SampleWithoutReplacement(n, cfg.BatchSize) {
			x := feat.Row(u)
			encOut := enc.Forward(x, &encCache)
			mu, logvar := encOut[:cfg.Dim], encOut[cfg.Dim:]
			// Reparameterize z = μ + exp(logvar/2)·ε.
			rng.NormalVec(zEps, 1)
			for d := 0; d < cfg.Dim; d++ {
				zSample[d] = mu[d] + math.Exp(0.5*logvar[d])*zEps[d]
			}
			recon := decoder.Forward(zSample, &decCache)
			// Reconstruction gradient (MSE) through the decoder.
			for d := range dRecon {
				_, dRecon[d] = nn.MSE(recon[d], x[d])
			}
			decOne.Zero()
			dz := decoder.Backward(&decCache, dRecon, decOne)
			// Encoder gradient: reparameterization plus KL terms
			// KL = ½Σ(μ² + e^{logvar} − logvar − 1).
			for d := 0; d < cfg.Dim; d++ {
				ev := math.Exp(logvar[d])
				dEncOut[d] = dz[d] + klWeight*mu[d]
				dEncOut[cfg.Dim+d] = dz[d]*0.5*math.Exp(0.5*logvar[d])*zEps[d] +
					klWeight*0.5*(ev-1)
			}
			encOne.Zero()
			enc.Backward(&encCache, dEncOut, encOne)
			// Per-example clipping on both networks (one joint example).
			encOne.Clip(cfg.Clip)
			decOne.Clip(cfg.Clip)
			encBatch.Add(encOne)
			decBatch.Add(decOne)
		}
		encBatch.AddNoise(cfg.Clip*cfg.Sigma, noise.Derive(uint64(epoch)).Derive(0))
		decBatch.AddNoise(cfg.Clip*cfg.Sigma, noise.Derive(uint64(epoch)).Derive(1))
		enc.ApplySGD(encBatch, cfg.LearningRate, float64(cfg.BatchSize))
		decoder.ApplySGD(decBatch, cfg.LearningRate, float64(cfg.BatchSize))

		acct.AddGaussianStep(gamma, cfg.Sigma)
		epochs = epoch + 1
		if dHat, _ := acct.DeltaFor(cfg.Epsilon); dHat >= cfg.Delta {
			stoppedByBudget = true
			break
		}
	}

	// Embedding: the encoder means μ.
	emb := mathx.NewMatrix(n, cfg.Dim)
	for u := 0; u < n; u++ {
		out := enc.Forward(feat.Row(u), &encCache)
		copy(emb.Row(u), out[:cfg.Dim])
	}
	eps, _ := acct.EpsilonFor(cfg.Delta)
	dHat, _ := acct.DeltaFor(cfg.Epsilon)
	return &baselines.Result{
		Embedding:       emb,
		Epochs:          epochs,
		EpsilonSpent:    eps,
		DeltaSpent:      dHat,
		StoppedByBudget: stoppedByBudget,
	}, nil
}
