package dpgvae

import (
	"context"
	"math"
	"testing"

	"seprivgemb/internal/baselines"
	"seprivgemb/internal/graph"
	"seprivgemb/internal/xrand"
)

func TestEncoderMeansAreFinite(t *testing.T) {
	g := graph.BarabasiAlbert(50, 2, xrand.New(8))
	cfg := baselines.DefaultConfig()
	cfg.Dim = 16
	cfg.BatchSize = 16
	cfg.Epochs = 5
	res, err := New().Train(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Embedding.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("VAE produced non-finite embedding values")
		}
	}
}

func TestStructurallyEquivalentNodesGetSimilarMeans(t *testing.T) {
	// Nodes with identical neighborhoods have identical input features, so
	// the deterministic encoder must assign them identical means.
	b := graph.NewBuilder(6)
	_ = b.AddEdge(0, 2)
	_ = b.AddEdge(0, 3)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(1, 3)
	_ = b.AddEdge(4, 5)
	g := b.Build()
	cfg := baselines.DefaultConfig()
	cfg.Dim = 8
	cfg.BatchSize = 4
	cfg.Epochs = 3
	res, err := New().Train(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	emb := res.Embedding
	for d := 0; d < cfg.Dim; d++ {
		if math.Abs(emb.At(0, d)-emb.At(1, d)) > 1e-9 {
			t.Fatalf("structurally equivalent nodes 0 and 1 got different means")
		}
	}
}
