package baselines

import (
	"math"

	"seprivgemb/internal/graph"
	"seprivgemb/internal/mathx"
	"seprivgemb/internal/xrand"
)

// RandomFeatures returns an n×dim matrix of unit-ℓ2-norm random rows. The
// paper's evaluation feeds GAP and ProGAP randomly generated node features
// ("we use randomly generated features as inputs for both methods"); this
// is that input.
func RandomFeatures(n, dim int, rng *xrand.RNG) *mathx.Matrix {
	x := mathx.NewMatrix(n, dim)
	rng.NormalVec(x.Data, 1)
	NormalizeRows(x)
	return x
}

// ProjectAdjacency returns node features obtained by projecting each
// degree-normalized adjacency row through a fixed random Gaussian matrix
// into dim dimensions (a Johnson–Lindenstrauss sketch). It lets the
// GAN/VAE baselines consume graph structure at a tractable input width.
func ProjectAdjacency(g *graph.Graph, dim int, rng *xrand.RNG) *mathx.Matrix {
	n := g.NumNodes()
	proj := mathx.NewMatrix(n, dim) // row u of the projection matrix R
	rng.NormalVec(proj.Data, 1/math.Sqrt(float64(dim)))
	out := mathx.NewMatrix(n, dim)
	for u := 0; u < n; u++ {
		du := g.Degree(u)
		if du == 0 {
			continue
		}
		row := out.Row(u)
		w := 1 / float64(du)
		for _, v := range g.Neighbors(u) {
			mathx.AXPY(w, proj.Row(int(v)), row)
		}
	}
	NormalizeRows(out)
	return out
}

// AggregateRaw returns A·X (optionally (A+I)·X), one hop of GNN
// neighborhood aggregation. With unit-norm input rows, one node contributes
// at most 1 to any aggregate, which is the sensitivity bound the GAP family
// calibrates its noise to.
func AggregateRaw(g *graph.Graph, x *mathx.Matrix, selfLoop bool) *mathx.Matrix {
	n := g.NumNodes()
	out := mathx.NewMatrix(n, x.Cols)
	for u := 0; u < n; u++ {
		row := out.Row(u)
		for _, v := range g.Neighbors(u) {
			mathx.AXPY(1, x.Row(int(v)), row)
		}
		if selfLoop {
			mathx.AXPY(1, x.Row(u), row)
		}
	}
	return out
}

// Aggregate returns rowNormalize(A·X), optionally with self-loops: one
// aggregation hop followed by the normalization that bounds the next hop's
// sensitivity.
func Aggregate(g *graph.Graph, x *mathx.Matrix, selfLoop bool) *mathx.Matrix {
	out := AggregateRaw(g, x, selfLoop)
	NormalizeRows(out)
	return out
}

// NormalizeRows rescales every row of x to unit ℓ2 norm, leaving zero rows
// untouched. Row normalization is what bounds aggregation sensitivity in
// the GAP family.
func NormalizeRows(x *mathx.Matrix) {
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		if nrm := mathx.Norm2(row); nrm > 0 {
			mathx.Scale(1/nrm, row)
		}
	}
}

// AddRowNoise perturbs every entry of x with N(0, sd²), drawing from the
// counter stream by flat element index — the deterministic-noise contract
// the core trainer follows (noise is addressed by position, not by draw
// order), which makes every baseline release bit-identical across repeated
// runs of one config. Elements are consumed as Box–Muller pairs to
// amortize the transcendentals.
func AddRowNoise(x *mathx.Matrix, sd float64, s xrand.Stream) {
	if sd <= 0 {
		return
	}
	d := x.Data
	for j := 0; 2*j < len(d); j++ {
		a, b := s.NormalPairAt(uint64(j))
		d[2*j] += sd * a
		if 2*j+1 < len(d) {
			d[2*j+1] += sd * b
		}
	}
}
