package baselines

import (
	"math"
	"testing"

	"seprivgemb/internal/graph"
	"seprivgemb/internal/mathx"
	"seprivgemb/internal/xrand"
)

func TestRandomFeaturesUnitRows(t *testing.T) {
	x := RandomFeatures(50, 16, xrand.New(1))
	for i := 0; i < x.Rows; i++ {
		if n := mathx.Norm2(x.Row(i)); math.Abs(n-1) > 1e-9 {
			t.Fatalf("row %d norm = %g, want 1", i, n)
		}
	}
}

func TestProjectAdjacencyShape(t *testing.T) {
	g := graph.BarabasiAlbert(100, 3, xrand.New(2))
	x := ProjectAdjacency(g, 24, xrand.New(3))
	if x.Rows != 100 || x.Cols != 24 {
		t.Fatalf("shape %dx%d", x.Rows, x.Cols)
	}
	for i := 0; i < x.Rows; i++ {
		n := mathx.Norm2(x.Row(i))
		if g.Degree(i) > 0 && math.Abs(n-1) > 1e-9 {
			t.Fatalf("row %d norm = %g", i, n)
		}
	}
}

func TestProjectAdjacencySimilarNodesSimilarFeatures(t *testing.T) {
	// Two nodes with identical neighborhoods get identical projections.
	b := graph.NewBuilder(5)
	_ = b.AddEdge(0, 2)
	_ = b.AddEdge(0, 3)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(1, 3)
	_ = b.AddEdge(2, 4)
	g := b.Build()
	x := ProjectAdjacency(g, 16, xrand.New(4))
	if d := mathx.EuclideanDistance(x.Row(0), x.Row(1)); d > 1e-9 {
		t.Errorf("structurally equivalent nodes differ by %g", d)
	}
}

func TestAggregate(t *testing.T) {
	// Path 0-1-2: aggregate of unit features.
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	g := b.Build()
	x := mathx.NewMatrix(3, 2)
	x.Set(0, 0, 1)
	x.Set(1, 1, 1)
	x.Set(2, 0, 1)
	agg := Aggregate(g, x, false)
	// Node 1 aggregates rows 0 and 2 = (2, 0) -> normalized (1, 0).
	if agg.At(1, 0) != 1 || agg.At(1, 1) != 0 {
		t.Errorf("agg row 1 = %v", agg.Row(1))
	}
	// Node 0 aggregates row 1 = (0, 1).
	if agg.At(0, 0) != 0 || agg.At(0, 1) != 1 {
		t.Errorf("agg row 0 = %v", agg.Row(0))
	}
	withSelf := Aggregate(g, x, true)
	// Node 0 with self-loop: (1, 1)/√2.
	want := 1 / math.Sqrt2
	if math.Abs(withSelf.At(0, 0)-want) > 1e-12 {
		t.Errorf("self-loop agg row 0 = %v", withSelf.Row(0))
	}
}

func TestNormalizeRowsLeavesZeroRows(t *testing.T) {
	x := mathx.NewMatrix(2, 3)
	x.Set(0, 0, 4)
	NormalizeRows(x)
	if x.At(0, 0) != 1 {
		t.Errorf("row 0 not normalized: %v", x.Row(0))
	}
	for _, v := range x.Row(1) {
		if v != 0 {
			t.Error("zero row was modified")
		}
	}
}

func TestAddRowNoise(t *testing.T) {
	x := mathx.NewMatrix(100, 100)
	AddRowNoise(x, 2, xrand.NewStream(5))
	sd := mathx.StdDev(x.Data)
	if math.Abs(sd-2) > 0.1 {
		t.Errorf("noise sd = %g, want 2", sd)
	}
	y := mathx.NewMatrix(2, 2)
	AddRowNoise(y, 0, xrand.NewStream(6))
	if mathx.Norm2(y.Data) != 0 {
		t.Error("zero-sd noise modified the matrix")
	}
	// Counter-addressed draws: a fresh stream with the same seed reproduces
	// the identical noise field.
	z := mathx.NewMatrix(100, 100)
	AddRowNoise(z, 2, xrand.NewStream(5))
	for i := range x.Data {
		if x.Data[i] != z.Data[i] {
			t.Fatal("AddRowNoise not deterministic for a fixed stream seed")
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Dim != 128 || cfg.Sigma != 5 || cfg.Delta != 1e-5 {
		t.Errorf("DefaultConfig deviates from the paper: %+v", cfg)
	}
}
