// Package dpggan implements a simplified-faithful DPGGAN baseline (Yang et
// al., "Secure deep graph generation with link differential privacy",
// IJCAI 2021): a graph GAN whose discriminator is trained with DPSGD
// (per-example clipping + Gaussian noise) under an RDP accountant, stopping
// when the privacy budget is spent.
//
// Simplifications vs. the original (DESIGN.md §2): node inputs are
// JL-projections of adjacency rows instead of full rows, and the networks
// are compact MLPs. The privacy mechanism — budget spent through noisy
// discriminator gradients, with early stopping at small ε — is preserved,
// which is what drives this method's behaviour in the paper's figures
// (premature convergence at tight budgets).
package dpggan

import (
	"context"
	"fmt"

	"seprivgemb/internal/baselines"
	"seprivgemb/internal/dp"
	"seprivgemb/internal/graph"
	"seprivgemb/internal/mathx"
	"seprivgemb/internal/nn"
	"seprivgemb/internal/xrand"
)

// Method is the DPGGAN baseline.
type Method struct{}

// New returns the baseline.
func New() *Method { return &Method{} }

// Name implements baselines.Method.
func (*Method) Name() string { return "DPGGAN" }

const zDim = 32

// Train implements baselines.Method.
func (*Method) Train(ctx context.Context, g *graph.Graph, cfg baselines.Config) (*baselines.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("dpggan: %w", err)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumNodes()
	if cfg.BatchSize > n {
		return nil, fmt.Errorf("dpggan: batch %d exceeds %d nodes", cfg.BatchSize, n)
	}
	rng := xrand.New(cfg.Seed ^ 0x47414e) // "GAN"
	// DP noise comes from a counter stream keyed by epoch, never from the
	// sequential rng: index-addressed draws are what make repeated runs of
	// one config bit-identical (the serving layer's dedup currency).
	noise := xrand.NewStream(cfg.Seed ^ 0x47414e)
	feat := baselines.ProjectAdjacency(g, cfg.Dim, rng)

	// Discriminator: feature → hidden (the embedding) → real/fake logit.
	disc := nn.NewMLP([]int{cfg.Dim, cfg.Dim, 1}, []nn.Activation{nn.Tanh, nn.Identity}, rng)
	// Generator: z → fake feature.
	gen := nn.NewMLP([]int{zDim, cfg.Dim, cfg.Dim}, []nn.Activation{nn.Tanh, nn.Identity}, rng)

	acct := dp.NewAccountant(nil)
	gamma := float64(cfg.BatchSize) / float64(n)

	dBatch := nn.NewGrads(disc)
	dOne := nn.NewGrads(disc)
	dScratch := nn.NewGrads(disc)
	gBatch := nn.NewGrads(gen)
	var cache, gCache nn.Cache
	z := make([]float64, zDim)
	epochs, stoppedByBudget := 0, false
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// --- Discriminator step (private: touches real node data). ---
		dBatch.Zero()
		for _, u := range rng.SampleWithoutReplacement(n, cfg.BatchSize) {
			// Real example, per-example clipped gradient.
			dOne.Zero()
			out := disc.Forward(feat.Row(u), &cache)
			_, dz := nn.BCEWithLogits(out[0], 1)
			disc.Backward(&cache, []float64{dz}, dOne)
			dOne.Clip(cfg.Clip)
			dBatch.Add(dOne)
			// Fake example: synthetic, carries no individual's data, but is
			// clipped identically to keep the update scale uniform.
			rng.NormalVec(z, 1)
			fake := append([]float64(nil), gen.Forward(z, &gCache)...)
			dOne.Zero()
			out = disc.Forward(fake, &cache)
			_, dz = nn.BCEWithLogits(out[0], 0)
			disc.Backward(&cache, []float64{dz}, dOne)
			dOne.Clip(cfg.Clip)
			dBatch.Add(dOne)
		}
		dBatch.AddNoise(cfg.Clip*cfg.Sigma, noise.Derive(uint64(epoch)))
		disc.ApplySGD(dBatch, cfg.LearningRate, float64(2*cfg.BatchSize))

		// --- Generator step (post-processing of the private D). ---
		gBatch.Zero()
		for b := 0; b < cfg.BatchSize; b++ {
			rng.NormalVec(z, 1)
			fake := gen.Forward(z, &gCache)
			out := disc.Forward(fake, &cache)
			_, dz := nn.BCEWithLogits(out[0], 1) // non-saturating G loss
			dScratch.Zero()
			dFake := disc.Backward(&cache, []float64{dz}, dScratch)
			gen.Backward(&gCache, dFake, gBatch)
		}
		gen.ApplySGD(gBatch, cfg.LearningRate, float64(cfg.BatchSize))

		acct.AddGaussianStep(gamma, cfg.Sigma)
		epochs = epoch + 1
		if dHat, _ := acct.DeltaFor(cfg.Epsilon); dHat >= cfg.Delta {
			stoppedByBudget = true
			break // budget exhausted: the premature stop the paper reports
		}
	}

	// Embedding: the discriminator's hidden representation of each node.
	emb := mathx.NewMatrix(n, cfg.Dim)
	for u := 0; u < n; u++ {
		disc.Forward(feat.Row(u), &cache)
		copy(emb.Row(u), hidden(&cache))
	}
	eps, _ := acct.EpsilonFor(cfg.Delta)
	dHat, _ := acct.DeltaFor(cfg.Epsilon)
	return &baselines.Result{
		Embedding:       emb,
		Epochs:          epochs,
		EpsilonSpent:    eps,
		DeltaSpent:      dHat,
		StoppedByBudget: stoppedByBudget,
	}, nil
}

// hidden returns the first hidden layer's activations from the cache.
func hidden(c *nn.Cache) []float64 { return c.Layer(1) }
