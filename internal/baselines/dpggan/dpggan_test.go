package dpggan

import (
	"context"
	"testing"

	"seprivgemb/internal/baselines"
	"seprivgemb/internal/graph"
	"seprivgemb/internal/xrand"
)

func TestDiscriminatorLearnsUnderGenerousBudget(t *testing.T) {
	// With ample budget and epochs the discriminator should move away from
	// its initialization (embeddings differ between 1 and many epochs).
	g := graph.BarabasiAlbert(60, 3, xrand.New(5))
	cfg := baselines.DefaultConfig()
	cfg.Dim = 16
	cfg.BatchSize = 16
	cfg.Epsilon = 50
	cfg.Seed = 6

	cfg.Epochs = 1
	one, err := New().Train(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Epochs = 30
	many, err := New().Train(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var diff float64
	for i := range one.Embedding.Data {
		d := one.Embedding.Data[i] - many.Embedding.Data[i]
		diff += d * d
	}
	if diff == 0 {
		t.Error("30 epochs of GAN training left the embedding identical to 1 epoch")
	}
}

func TestHiddenLayerIsEmbedding(t *testing.T) {
	g := graph.BarabasiAlbert(40, 2, xrand.New(7))
	cfg := baselines.DefaultConfig()
	cfg.Dim = 20
	cfg.BatchSize = 8
	cfg.Epochs = 2
	res, err := New().Train(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding.Cols != 20 {
		t.Errorf("embedding dim %d, want 20 (the hidden width)", res.Embedding.Cols)
	}
}
