package baselines_test

import (
	"context"
	"math"
	"testing"

	"seprivgemb/internal/baselines"
	"seprivgemb/internal/baselines/dpggan"
	"seprivgemb/internal/baselines/dpgvae"
	"seprivgemb/internal/baselines/gap"
	"seprivgemb/internal/baselines/progap"
	"seprivgemb/internal/eval"
	"seprivgemb/internal/graph"
	"seprivgemb/internal/xrand"
)

func quickConfig() baselines.Config {
	cfg := baselines.DefaultConfig()
	cfg.Dim = 16
	cfg.Epochs = 10
	cfg.BatchSize = 16
	cfg.Seed = 1
	return cfg
}

func methods() []baselines.Method {
	return []baselines.Method{dpggan.New(), dpgvae.New(), gap.New(), progap.New()}
}

func TestAllMethodsProduceFiniteEmbeddings(t *testing.T) {
	g := graph.BarabasiAlbert(80, 3, xrand.New(7))
	cfg := quickConfig()
	for _, m := range methods() {
		res, err := m.Train(context.Background(), g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		emb := res.Embedding
		if emb.Rows != g.NumNodes() || emb.Cols != cfg.Dim {
			t.Fatalf("%s: embedding %dx%d, want %dx%d",
				m.Name(), emb.Rows, emb.Cols, g.NumNodes(), cfg.Dim)
		}
		for _, v := range emb.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite embedding value", m.Name())
			}
		}
	}
}

func TestMethodsDeterministic(t *testing.T) {
	g := graph.BarabasiAlbert(60, 2, xrand.New(8))
	cfg := quickConfig()
	cfg.Epochs = 3
	for _, makeM := range []func() baselines.Method{
		func() baselines.Method { return dpggan.New() },
		func() baselines.Method { return dpgvae.New() },
		func() baselines.Method { return gap.New() },
		func() baselines.Method { return progap.New() },
	} {
		a, err := makeM().Train(context.Background(), g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := makeM().Train(context.Background(), g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		name := makeM().Name()
		for i := range a.Embedding.Data {
			if a.Embedding.Data[i] != b.Embedding.Data[i] {
				t.Fatalf("%s not deterministic", name)
			}
		}
	}
}

func TestMethodNames(t *testing.T) {
	want := map[string]bool{"DPGGAN": true, "DPGVAE": true, "GAP": true, "ProGAP": true}
	for _, m := range methods() {
		if !want[m.Name()] {
			t.Errorf("unexpected method name %q", m.Name())
		}
	}
}

func TestGAPCapturesSomeStructure(t *testing.T) {
	// On a strongly clustered graph with a generous budget, GAP's noisy
	// aggregation should still beat a random embedding at structural
	// equivalence (this is the paper's reason it outperforms the GAN/VAE
	// baselines on StrucEqu).
	g := graph.StochasticBlockModel(150, 3, 0.3, 0.01, xrand.New(9))
	cfg := quickConfig()
	cfg.Epsilon = 8
	res, err := gap.New().Train(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	se := eval.StrucEqu(g, res.Embedding)
	random := baselines.RandomFeatures(g.NumNodes(), cfg.Dim, xrand.New(10))
	seRandom := eval.StrucEqu(g, random)
	if se <= seRandom {
		t.Errorf("GAP StrucEqu %g not above random baseline %g", se, seRandom)
	}
}

func TestGAPHopsValidation(t *testing.T) {
	g := graph.BarabasiAlbert(40, 2, xrand.New(11))
	cfg := quickConfig()
	cfg.Hops = 0
	if _, err := gap.New().Train(context.Background(), g, cfg); err == nil {
		t.Error("hops=0 accepted by GAP")
	}
	if _, err := progap.New().Train(context.Background(), g, cfg); err == nil {
		t.Error("hops=0 accepted by ProGAP")
	}
}

func TestGANVAEBatchValidation(t *testing.T) {
	g := graph.BarabasiAlbert(20, 2, xrand.New(12))
	cfg := quickConfig()
	cfg.BatchSize = 100
	if _, err := dpggan.New().Train(context.Background(), g, cfg); err == nil {
		t.Error("oversized batch accepted by DPGGAN")
	}
	if _, err := dpgvae.New().Train(context.Background(), g, cfg); err == nil {
		t.Error("oversized batch accepted by DPGVAE")
	}
}

func TestTightBudgetStopsGANEarly(t *testing.T) {
	// With a very small ε the accountant must stop the GAN well before its
	// epoch limit; the run should still return a usable embedding — the
	// "premature convergence" the paper attributes to these baselines.
	g := graph.BarabasiAlbert(60, 2, xrand.New(13))
	cfg := quickConfig()
	cfg.Epsilon = 0.01
	cfg.Sigma = 1
	cfg.Epochs = 100000 // would take forever if the stop failed
	res, err := dpggan.New().Train(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding.Rows != g.NumNodes() {
		t.Fatal("embedding shape wrong after early stop")
	}
	if !res.StoppedByBudget {
		t.Error("early-stopped run not flagged StoppedByBudget")
	}
	if res.Epochs >= cfg.Epochs {
		t.Errorf("early stop ran all %d epochs", res.Epochs)
	}
}
