// Package gap implements a simplified-faithful GAP baseline (Sajadmanesh et
// al., "GAP: Differentially private graph neural networks with aggregation
// perturbation", USENIX Security 2023). GAP spends its privacy budget by
// perturbing the output of every neighborhood-aggregation step; as the
// paper under reproduction notes, "all aggregate outputs need to be
// re-perturbed at each training iteration", which caps its utility.
//
// This implementation keeps that mechanism exactly: random unit-norm node
// features (the evaluation's input choice) are aggregated for K hops, each
// hop's row-normalized aggregate is perturbed with Gaussian noise
// calibrated so the K releases jointly satisfy (ε, δ)-DP, and everything
// downstream is noise-free post-processing.
package gap

import (
	"context"
	"fmt"

	"seprivgemb/internal/baselines"
	"seprivgemb/internal/dp"
	"seprivgemb/internal/graph"
	"seprivgemb/internal/mathx"
	"seprivgemb/internal/xrand"
)

// Method is the GAP baseline.
type Method struct{}

// New returns the baseline.
func New() *Method { return &Method{} }

// Name implements baselines.Method.
func (*Method) Name() string { return "GAP" }

// Train implements baselines.Method.
func (*Method) Train(ctx context.Context, g *graph.Graph, cfg baselines.Config) (*baselines.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("gap: %w", err)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumNodes()
	rng := xrand.New(cfg.Seed ^ 0x474150) // "GAP"
	// Release noise comes from a counter stream keyed by hop — the
	// index-addressed draws that make repeated releases bit-identical.
	noise := xrand.NewStream(cfg.Seed ^ 0x474150)
	x := baselines.RandomFeatures(n, cfg.Dim, rng)

	// Split the budget across the K perturbed aggregation releases. Row
	// normalization bounds each node's contribution to any aggregate at 1,
	// so sensitivity is 1 per release.
	sigma := dp.CalibrateGaussianSigma(cfg.Epsilon, cfg.Delta, cfg.Hops)

	sum := mathx.NewMatrix(n, cfg.Dim)
	cur := x
	for hop := 0; hop < cfg.Hops; hop++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		agg := baselines.AggregateRaw(g, cur, false)
		baselines.AddRowNoise(agg, sigma, noise.Derive(uint64(hop)))
		// The released noisy aggregate keeps its raw scale (row norm grows
		// with degree — the structural signal GAP retains); rows are
		// re-normalized only to bound the next hop's sensitivity.
		sum.AddScaled(1, agg)
		cur = agg.Clone()
		baselines.NormalizeRows(cur)
	}
	// Post-processing: average the hop outputs.
	mathx.Scale(1/float64(cfg.Hops), sum.Data)
	// The calibrated release spends the configured budget exactly.
	return &baselines.Result{
		Embedding:    sum,
		Epochs:       cfg.Hops,
		EpsilonSpent: cfg.Epsilon,
		DeltaSpent:   cfg.Delta,
	}, nil
}
