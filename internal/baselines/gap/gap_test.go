package gap

import (
	"context"
	"testing"

	"seprivgemb/internal/baselines"
	"seprivgemb/internal/graph"
	"seprivgemb/internal/mathx"
	"seprivgemb/internal/xrand"
)

func TestMoreNoiseWithTighterBudget(t *testing.T) {
	// Embeddings at ε=0.3 must be farther from the noise-free aggregation
	// than embeddings at ε=8 — the monotonicity behind Figure 3's GAP curve.
	g := graph.BarabasiAlbert(120, 3, xrand.New(1))
	cfg := baselines.DefaultConfig()
	cfg.Dim = 16
	cfg.Seed = 2

	reference := noiseFreeAggregate(g, cfg)
	dist := func(eps float64) float64 {
		c := cfg
		c.Epsilon = eps
		res, err := New().Train(context.Background(), g, c)
		if err != nil {
			t.Fatal(err)
		}
		var d float64
		emb := res.Embedding
		for i := range emb.Data {
			diff := emb.Data[i] - reference.Data[i]
			d += diff * diff
		}
		return d
	}
	if tight, loose := dist(0.3), dist(8); tight <= loose {
		t.Errorf("tighter budget should add more noise: dist(0.3)=%g <= dist(8)=%g", tight, loose)
	}
}

// noiseFreeAggregate replays GAP's pipeline without noise.
func noiseFreeAggregate(g *graph.Graph, cfg baselines.Config) *mathx.Matrix {
	rng := xrand.New(cfg.Seed ^ 0x474150)
	x := baselines.RandomFeatures(g.NumNodes(), cfg.Dim, rng)
	sum := mathx.NewMatrix(g.NumNodes(), cfg.Dim)
	cur := x
	for hop := 0; hop < cfg.Hops; hop++ {
		agg := baselines.AggregateRaw(g, cur, false)
		sum.AddScaled(1, agg)
		cur = agg.Clone()
		baselines.NormalizeRows(cur)
	}
	mathx.Scale(1/float64(cfg.Hops), sum.Data)
	return sum
}
