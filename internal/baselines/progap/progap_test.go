package progap

import (
	"context"
	"testing"

	"seprivgemb/internal/baselines"
	"seprivgemb/internal/baselines/gap"
	"seprivgemb/internal/eval"
	"seprivgemb/internal/graph"
	"seprivgemb/internal/xrand"
)

func TestProGAPAtLeastMatchesGAPOnStructure(t *testing.T) {
	// The figure's expected ordering: ProGAP ≥ GAP at equal budget — the
	// progressive stages reuse perturbed signal instead of re-aggregating
	// raw features. Checked at a generous budget where both have signal.
	g := graph.BarabasiAlbert(150, 4, xrand.New(3))
	cfg := baselines.DefaultConfig()
	cfg.Dim = 24
	cfg.Epsilon = 3.5
	var pro, plain float64
	for seed := uint64(0); seed < 3; seed++ {
		cfg.Seed = seed
		resP, err := New().Train(context.Background(), g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		resG, err := gap.New().Train(context.Background(), g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pro += eval.StrucEqu(g, resP.Embedding)
		plain += eval.StrucEqu(g, resG.Embedding)
	}
	if pro < plain-0.15 {
		t.Errorf("ProGAP mean StrucEqu %g far below GAP %g", pro/3, plain/3)
	}
}

func TestStagesValidation(t *testing.T) {
	g := graph.BarabasiAlbert(30, 2, xrand.New(4))
	cfg := baselines.DefaultConfig()
	cfg.Hops = 0
	if _, err := New().Train(context.Background(), g, cfg); err == nil {
		t.Error("zero stages accepted")
	}
}
