// Package progap implements a simplified-faithful ProGAP baseline
// (Sajadmanesh & Gatica-Perez, "ProGAP: Progressive graph neural networks
// with differential privacy guarantees", WSDM 2024). ProGAP refines GAP by
// training progressively: each stage aggregates the previous stage's
// representation once (with calibrated noise), transforms it, and a
// jumping-knowledge combination of all stages forms the output. Because
// each stage reuses the perturbed output of the one before instead of
// re-aggregating raw features, signal accumulates better per unit of
// budget, which is why the paper observes ProGAP slightly above GAP.
package progap

import (
	"context"
	"fmt"

	"seprivgemb/internal/baselines"
	"seprivgemb/internal/dp"
	"seprivgemb/internal/graph"
	"seprivgemb/internal/mathx"
	"seprivgemb/internal/nn"
	"seprivgemb/internal/xrand"
)

// Method is the ProGAP baseline.
type Method struct{}

// New returns the baseline.
func New() *Method { return &Method{} }

// Name implements baselines.Method.
func (*Method) Name() string { return "ProGAP" }

// Train implements baselines.Method.
func (*Method) Train(ctx context.Context, g *graph.Graph, cfg baselines.Config) (*baselines.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("progap: %w", err)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumNodes()
	rng := xrand.New(cfg.Seed ^ 0x50524f) // "PRO"
	// Per-stage release noise from a counter stream keyed by stage, so
	// repeated runs of one config release identical bits.
	noise := xrand.NewStream(cfg.Seed ^ 0x50524f)
	x := baselines.RandomFeatures(n, cfg.Dim, rng)

	// One noisy aggregation release per stage.
	sigma := dp.CalibrateGaussianSigma(cfg.Epsilon, cfg.Delta, cfg.Hops)

	// Jumping-knowledge accumulator over the noisy stage releases.
	jk := mathx.NewMatrix(n, cfg.Dim)
	cur := x
	for stage := 0; stage < cfg.Hops; stage++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Aggregate with self-loops so each stage refines rather than
		// replaces its input, then release with calibrated noise. The raw
		// (unnormalized) release keeps the degree-scaled signal; only the
		// next stage's input is renormalized for sensitivity.
		agg := baselines.AggregateRaw(g, cur, true)
		baselines.AddRowNoise(agg, sigma, noise.Derive(uint64(stage)))
		jk.AddScaled(1, agg)
		// Stage transformation: a fixed random expansion + tanh, the
		// training-free stand-in for the stage's learned module (applied to
		// already-private data: pure post-processing).
		cur = transform(agg, rng.Split())
	}
	mathx.Scale(1/float64(cfg.Hops), jk.Data)
	return &baselines.Result{
		Embedding:    jk,
		Epochs:       cfg.Hops,
		EpsilonSpent: cfg.Epsilon,
		DeltaSpent:   cfg.Delta,
	}, nil
}

// transform applies a per-stage random square projection with a tanh
// nonlinearity, row-normalized.
func transform(x *mathx.Matrix, rng *xrand.RNG) *mathx.Matrix {
	dim := x.Cols
	w := mathx.NewMatrix(dim, dim)
	rng.NormalVec(w.Data, 1/float64(dim))
	// Blend identity to retain aggregation signal through the stage.
	for d := 0; d < dim; d++ {
		w.Data[d*dim+d] += 1
	}
	out := mathx.NewMatrix(x.Rows, dim)
	tmp := make([]float64, dim)
	for i := 0; i < x.Rows; i++ {
		w.MulVec(tmp, x.Row(i))
		dst := out.Row(i)
		for d := range tmp {
			dst[d] = nn.Tanh.Apply(tmp[d])
		}
	}
	baselines.NormalizeRows(out)
	return out
}
