package seprivgemb_test

import (
	"context"
	"fmt"
	"log"

	"seprivgemb"
)

// ringGraph builds a small deterministic cycle graph for the examples.
func ringGraph(n int) *seprivgemb.Graph {
	b := seprivgemb.NewGraphBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(i, (i+1)%n); err != nil {
			log.Fatal(err)
		}
	}
	return b.Build()
}

// ExampleNewSession trains a private embedding end to end: build a graph,
// pick a structure preference, run a session under the paper's defaults.
func ExampleNewSession() {
	g := ringGraph(64)
	prox, err := seprivgemb.NewProximity("degree", g)
	if err != nil {
		log.Fatal(err)
	}

	cfg := seprivgemb.DefaultConfig() // ε=3.5, δ=1e-5, σ=5, non-zero perturbation
	cfg.Dim = 16
	cfg.BatchSize = 16
	cfg.MaxEpochs = 10
	cfg.Seed = 1

	res, err := seprivgemb.NewSession(g, prox, seprivgemb.WithConfig(cfg)).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	emb := res.Embedding()
	fmt.Printf("trained %d epochs (%v), embedding %dx%d\n",
		res.Epochs, res.Stopped, emb.Rows, emb.Cols)
	// Output:
	// trained 10 epochs (completed), embedding 64x16
}

// ExampleWithMemoryBudget bounds a run's resident weight state: under a
// budget smaller than the dense 2·|V|·r·8 footprint the matrices move to
// a file-backed spill tier, and the result stays bit-identical to the
// in-memory run — the budget is an execution knob, not a hyperparameter.
func ExampleWithMemoryBudget() {
	g := ringGraph(2048)
	prox, err := seprivgemb.NewProximity("degree", g)
	if err != nil {
		log.Fatal(err)
	}

	cfg := seprivgemb.DefaultConfig()
	cfg.Dim = 128 // dense state: 2·2048·128·8 = 4 MiB
	cfg.K = 2
	cfg.BatchSize = 8
	cfg.MaxEpochs = 2
	cfg.Seed = 1

	inMem, err := seprivgemb.NewSession(g, prox,
		seprivgemb.WithConfig(cfg),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	budgeted, err := seprivgemb.NewSession(g, prox,
		seprivgemb.WithConfig(cfg),
		seprivgemb.WithMemoryBudget(3<<20), // 3 MiB, below the 4 MiB dense state
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	a, b := inMem.Embedding(), budgeted.Embedding()
	identical := len(a.Data) == len(b.Data)
	for i := range a.Data {
		identical = identical && a.Data[i] == b.Data[i]
	}
	fmt.Printf("spilled run bit-identical to in-memory run: %v\n", identical)
	// Output:
	// spilled run bit-identical to in-memory run: true
}
